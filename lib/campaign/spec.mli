(** Declarative scenario grids.

    The paper's claims are universally quantified over topologies, initial
    configurations and daemons; a single [Harness.Runner.config] samples one
    point of that space. A {!grid} names whole axes instead — lists of
    topologies, corruption levels, daemon kinds, workload shapes and seeds —
    and {!expand} takes their cartesian product into a deterministic,
    stably-ordered scenario list (topology-major, seed-minor) that
    [Campaign.Pool] can shard across domains.

    Every scenario is self-contained: {!materialize} rebuilds its runner
    configuration from the scenario alone (workload and corruption
    randomness are derived from the scenario's own seed), so a scenario
    executes identically whatever worker picks it up, whatever ran before
    it, and whatever the rest of the grid looks like. *)

type topology = {
  t_name : string;  (** canonical spelling, e.g. ["ring:8"] *)
  graph : Topology.Graph.t;
}

val topology_of_string : string -> (topology, string) result
(** Parse [ring:8], [path:5], [star:6], [complete:5], [grid:3x4],
    [torus:3x3], [hypercube:3], [btree:7], [random:12:6], [fig1] or
    [fig2] (case-insensitive). Random topologies are built from a fixed
    internal seed, so equal spellings denote equal graphs. *)

val topology_exn : string -> topology
(** @raise Invalid_argument on a spelling {!topology_of_string} rejects. *)

type corruption =
  | Pristine  (** {!Harness.Fault.pristine} *)
  | Random_point
      (** a seed-derived random point of the corruption space
          ({!Harness.Fault.random_spec}) *)
  | Adversarial  (** {!Harness.Fault.adversarial} *)

val corruption_to_string : corruption -> string
val corruption_of_string : string -> (corruption, string) result

type workload_kind =
  | Uniform of int  (** per-processor count, random destinations *)
  | All_to_one of int  (** convergecast onto processor 0 *)
  | One_to_all of int  (** broadcast-by-unicast rounds from processor 0 *)
  | Permutation of int
  | Neighbors of int
  | Saturating of int  (** colliding payloads (Prop. 5/6 stress) *)

val workload_to_string : workload_kind -> string
(** e.g. ["uniform:2"]. *)

val workload_of_string : string -> (workload_kind, string) result

type model =
  | State_model  (** shared-memory semantics, [Harness.Runner] / [Chaos.Runner] *)
  | Mp_model  (** message-passing port, [Chaos.Mp_run] over [Mp.Ssmfp_mp] *)

val model_to_string : model -> string
(** ["state"] / ["mp"]. *)

val model_of_string : string -> (model, string) result

val chaos_exn : string -> Chaos.Schedule.t
(** Parse a chaos schedule ({!Chaos.Schedule.of_string}).
    @raise Invalid_argument on a spelling it rejects. *)

val seeds_of_string : string -> (int list, string) result
(** Comma-separated seeds and inclusive ranges: ["1,2,5"], ["1..8"],
    ["1..3,7"]. *)

type grid = {
  topologies : topology list;
  corruptions : corruption list;
  daemons : Harness.Runner.daemon_kind list;
  workloads : workload_kind list;
  models : model list;
  chaos : Chaos.Schedule.t list;
      (** fault schedules; [Chaos.Schedule.none] is the plain run *)
  snapshots : int list;
      (** snapshot initiation intervals in channel deliveries; [0] is
          snapshot-off (mp scenarios only — {!chaos_filter} drops
          state-model points with a nonzero interval) *)
  seeds : int list;
  max_steps : int;  (** step budget of every scenario *)
}

val default_grid : unit -> grid
(** 32 scenarios: {ring:6, path:5, star:6, grid:3x3} × {pristine,
    adversarial} × {synchronous, distributed} × uniform:2 × seeds {1, 2}
    — the sweep EXPERIMENTS.md maps onto Propositions 4–7. *)

val smoke_grid : unit -> grid
(** 8 fast scenarios for CI: {ring:5, path:4} × {pristine, adversarial}
    × synchronous × uniform:1 × seeds {1, 2}. *)

val chaos_grid : unit -> grid
(** The robustness sweep: {ring:6, path:5, grid:3x3} × {pristine,
    adversarial} × {synchronous, distributed} × uniform:2 × {state, mp}
    × three fault schedules (an early point burst, an all-victims burst
    followed by a crash on a lossy channel, and a mid-run burst on a
    flaky channel) × snapshot intervals {off, 400} × seeds {1, 2}.
    Expand it with {!chaos_filter} to drop the mp × distributed twins
    and the state × snapshot-on points — 144 scenarios. *)

type scenario = {
  index : int;  (** position in the expanded (filtered) list *)
  id : string;
      (** ["<topology>/<corruption>/<daemon>/<workload>/<model>/<chaos>[/snap<N>]/s<seed>"]
          — unique within a grid and stable across grid reshapes; the
          [/snap<N>] segment appears only when [snapshot > 0], so ids
          from pre-snapshot artifacts are unchanged *)
  topology : topology;
  corruption : corruption;
  daemon : Harness.Runner.daemon_kind;
  workload : workload_kind;
  model : model;
  chaos : Chaos.Schedule.t;
  snapshot : int;  (** snapshot interval in deliveries; [0] = off *)
  seed : int;
  max_steps : int;
}

val chaos_filter : scenario -> bool
(** Keeps every state-model scenario (snapshot-off spelling only — the
    layer is mp-specific) and only the synchronous-daemon spelling of
    each mp scenario (the synchronizer has no daemon, so other
    spellings would be semantically identical twins). *)

val expand : ?filter:(scenario -> bool) -> grid -> scenario list
(** Cartesian product in a stable order: topologies outermost, then
    corruptions, daemons, workloads, models, chaos schedules, and seeds
    innermost. [filter] drops scenarios before indices are assigned, so
    the surviving list is densely numbered.
    @raise Invalid_argument if two scenarios share an id (duplicate axis
    values). *)

val materialize : scenario -> Harness.Runner.config
(** The runner configuration of a scenario. Deterministic: the workload
    stream is seeded with [seed + 7919] (the same convention as
    [ssmfp_cli run]) and a [Random_point] corruption spec with a further
    seed-derived stream, so two calls — on any domain — build identical
    configurations. *)

val materialize_workload : scenario -> Harness.Workload.t
(** Just the workload of {!materialize} (the mp path needs it bare). *)

val materialize_fault_spec : scenario -> Harness.Fault.spec
(** Just the corruption spec of {!materialize}. *)
