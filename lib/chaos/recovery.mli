(** The recovery oracle: does the system re-satisfy SP after the last
    burst, and how fast?

    Snap-stabilization's promise, restated for a chaos run: whatever the
    faults did, every message {e requested after the re-legitimacy
    point} is delivered once and only once, invalid deliveries stay
    within Proposition 4's [2n]-per-destination budget {e amortized over
    fault events} (through the end of window [k], at most [(k+1)·2n] per
    destination — the purge of one event's forgeries may cross the next
    burst's boundary), and the time back to quiescence after the last
    burst sits inside the [O(max(R_A, Δ^D))] envelope of
    Propositions 5–7. *)

type report = {
  burst_rounds : int list;  (** rounds the bursts actually fired, sorted *)
  relegitimacy_round : int;
      (** [max](last burst round, last invalid delivery round): after
          this round no forged traffic reaches a higher layer *)
  post_generated : int;
      (** valid ghosts generated strictly after the last burst round —
          snap-stabilization binds SP to all of them, even those
          generated while leftover invalid messages are still being
          purged *)
  post_delivered_once : int;
  post_duplicated : int;  (** must be 0 *)
  post_lost : int;  (** must be 0 at quiescence *)
  invalid_total : int;
  invalid_worst_window : int;
      (** worst per-destination invalid count inside one burst window
          (informational — the enforced check is the cumulative one) *)
  invalid_budget : int;  (** [2n], the per-fault-event allowance *)
  invalid_budget_ok : bool;
      (** cumulative Prop. 4: every destination's invalid deliveries
          through window [k] stay within [(k+1)·2n], for all [k] *)
  recovery_rounds : int;
      (** rounds from the last burst back to quiescence; [-1] if the run
          never got there *)
  envelope_rounds : int;
      (** [max(R_A after the last burst, Δ^D)] (capped at 1e9) *)
  within_envelope : bool;
      (** informational — the paper's bound hides constants, so this is
          not part of [ok] *)
  quiescent : bool;
  ok : bool;
  violations : string list;
}

val analyze :
  oracle:Harness.Oracle.t ->
  burst_rounds:int list ->
  n:int ->
  delta:int ->
  diameter:int ->
  final_round:int ->
  quiescent:bool ->
  routing_settled_round:int ->
  unit ->
  report
(** Model-agnostic: feed it the oracle of a state-model run (rounds =
    engine rounds) or an mp run (rounds = pulses, with
    [routing_settled_round = 0]). *)

val to_json : report -> Obs.Json.t
