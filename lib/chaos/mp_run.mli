(** Message-passing chaos runs: the [Mp.Ssmfp_mp] synchronizer port
    driven in segments, with bursts striking between segments and the
    schedule's channel preset wired into the network's
    loss/duplication/reorder knobs.

    Burst rounds are synchronizer pulses here. A burst's state domains
    corrupt the victims' SSMFP cores through [Ssmfp_mp.set_core]; its
    [Crash] domain takes the victims down for a fixed span of scheduler
    steps (they lose mirrors and timers on recovery). *)

type outcome = {
  mp_outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;
  max_pulse : int;
  oracle : Harness.Oracle.t;
  verdict : Harness.Oracle.verdict;
      (** whole-run SP check; bursts may legitimately fail it — the
          chaos verdict is [report.ok] *)
  report : Recovery.report;
  fired : (int * int) list;  (** (pulse fired at, victims), firing order *)
  aftermath_submitted : int;
  submitted : int;
      (** workload requests + aftermath — [verdict]'s expected total *)
  invalid_planted : int;
      (** invalid messages sitting in the corrupted initial cores *)
  channel : Mp.Ssmfp_mp.channel_stats;
  schedule : Schedule.t;
}

val run :
  ?spec:Harness.Fault.spec ->
  ?channel_garbage:int ->
  ?seed:int ->
  ?max_deliveries:int ->
  ?aftermath:int ->
  ?prof:Obs.Prof.t ->
  schedule:Schedule.t ->
  Topology.Graph.t ->
  Harness.Workload.t ->
  outcome
(** [max_deliveries] (default 2_000_000) is a per-segment budget: each
    burst segment and the final drain get the full budget, so a run is
    bounded by [(bursts + 1) * max_deliveries] scheduler steps.
    [aftermath] (default 0) submits that many fresh requests right
    after the last burst (counted into [verdict]'s expected total), so
    the recovery oracle's post-burst SP check is never vacuous.

    [?prof] threads into {!Mp.Ssmfp_mp.create} (Lamport hop log,
    latency/queue-depth histograms, retransmission counts) and records
    the run's skeleton on track 0: one ["chaos.segment"] span per
    between-burst drive and a ["chaos.drain"] span for the final drain. *)
