(** Message-passing chaos runs: the [Mp.Ssmfp_mp] synchronizer port
    driven in segments, with bursts striking between segments and the
    schedule's channel preset wired into the network's
    loss/duplication/reorder knobs.

    Burst rounds are synchronizer pulses here. A burst's state domains
    corrupt the victims' SSMFP cores through [Ssmfp_mp.set_core]; its
    [Crash] domain takes the victims down for a fixed span of scheduler
    steps (they lose mirrors and timers on recovery).

    With [snapshot_every > 0] the run additionally carries the in-band
    Chandy–Lamport layer ({!Snapshot.Ssmfp_link}): a snapshot epoch is
    initiated every that many channel deliveries, completed cuts are
    checked {e online} by the cut oracle between drive chunks, and at
    quiescence one final cut is completed whose replayed ledgers yield
    the cut-side verdict and recovery report — compared against the
    omniscient ones in [cut_agrees]. *)

type snapshot_outcome = {
  snapshot_every : int;
  epochs : int;  (** epochs initiated (completed + abandoned + active) *)
  cuts : int;  (** cuts completed and checked *)
  consistent : int;  (** cuts passing the cause-before-effect check *)
  shadow_ok : int;  (** cuts whose stored/shadow fingerprints agree *)
  abandoned : int;
  markers : Mp.Ssmfp_mp.marker_stats;
  markers_resent : int;  (** marker retransmissions across all epochs *)
  cut_latencies : int list;  (** per cut, in channel deliveries *)
  online_violations : string list;  (** cut-oracle flags, chronological *)
  relegitimacy_bracket : (int * int option) option;
      (** pulse bracket within which invalid deliveries stopped growing *)
  cut_verdict : Harness.Oracle.verdict option;
      (** SP checked on the final cut's replayed ledgers *)
  cut_report : Recovery.report option;
      (** recovery analysis on the same replayed oracle *)
  cut_agrees : bool;
      (** cut-side and omniscient verdicts agree ([verdict.ok] and
          [report.ok] both match); [false] when no cut completed *)
}

type outcome = {
  mp_outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;
  max_pulse : int;
  oracle : Harness.Oracle.t;
  verdict : Harness.Oracle.verdict;
      (** whole-run SP check; bursts may legitimately fail it — the
          chaos verdict is [report.ok] *)
  report : Recovery.report;
  fired : (int * int) list;  (** (pulse fired at, victims), firing order *)
  aftermath_submitted : int;
  submitted : int;
      (** workload requests + aftermath — [verdict]'s expected total *)
  invalid_planted : int;
      (** invalid messages sitting in the corrupted initial cores *)
  channel : Mp.Ssmfp_mp.channel_stats;
  window : int;
      (** effective window size the run used (0 = backoff mode) *)
  window_retransmits : int;
      (** window-layer RTO/nak/resync retransmissions, 0 in backoff mode *)
  schedule : Schedule.t;
  snapshot : snapshot_outcome option;  (** [Some] iff [snapshot_every > 0] *)
}

val run :
  ?spec:Harness.Fault.spec ->
  ?channel_garbage:int ->
  ?seed:int ->
  ?max_deliveries:int ->
  ?aftermath:int ->
  ?snapshot_every:int ->
  ?on_cut:(Snapshot.Ssmfp_link.cut -> unit) ->
  ?prof:Obs.Prof.t ->
  ?window:int ->
  ?synchrony:Mp.Synchrony.t ->
  ?rto:int ->
  schedule:Schedule.t ->
  Topology.Graph.t ->
  Harness.Workload.t ->
  outcome
(** [?window], [?synchrony] and [?rto] select the mp retransmission
    layer and channel timing model ({!Mp.Ssmfp_mp.create}); [window] and
    [synchrony] default to the schedule's own [@win=]/[@ps=] modifiers
    (an explicit argument overrides the schedule — the CLI flags ride
    here), [rto] to the derived default.

    [max_deliveries] (default 2_000_000) is a per-segment budget: each
    burst segment and the final drain get the full budget, so a run is
    bounded by [(bursts + 1) * max_deliveries] scheduler steps.
    [aftermath] (default 0) submits that many fresh requests right
    after the last burst (counted into [verdict]'s expected total), so
    the recovery oracle's post-burst SP check is never vacuous.

    [snapshot_every] (default 0 = off) initiates a snapshot epoch every
    that many channel deliveries; [on_cut] is called on each completed
    cut as it is harvested (journal streaming). A snapshot-off run
    never attaches the layer and replays byte-identically to builds
    that predate it.

    [?prof] threads into {!Mp.Ssmfp_mp.create} (Lamport hop log,
    latency/queue-depth histograms, retransmission counts) and records
    the run's skeleton on track 0: one ["chaos.segment"] span per
    between-burst drive, a ["chaos.drain"] span for the final drain and
    a ["chaos.snapshot_drain"] span for the final-cut completion, each
    phase attributing its delivery count to the matching
    ["chaos.*_deliveries"] counter. *)
