type domain = Routing | Buffers | Queues | Flags | Crash

let all_domains = [ Routing; Buffers; Queues; Flags; Crash ]

let domain_letter = function
  | Routing -> 'r'
  | Buffers -> 'b'
  | Queues -> 'q'
  | Flags -> 'f'
  | Crash -> 'c'

let domain_of_letter = function
  | 'r' -> Ok Routing
  | 'b' -> Ok Buffers
  | 'q' -> Ok Queues
  | 'f' -> Ok Flags
  | 'c' -> Ok Crash
  | ch -> Error (Printf.sprintf "unknown fault domain %C (expected r b q f c)" ch)

type victims = All | Count of int

type burst = { at : int; domains : domain list; victims : victims }

type channel = Reliable | Lossy | Flaky

type knobs = { loss : float; duplication : float; reorder : float }

let channel_knobs = function
  | Reliable -> { loss = 0.; duplication = 0.; reorder = 0. }
  | Lossy -> { loss = 0.15; duplication = 0.05; reorder = 0.10 }
  | Flaky -> { loss = 0.30; duplication = 0.10; reorder = 0.20 }

let channel_to_string = function
  | Reliable -> "reliable"
  | Lossy -> "lossy"
  | Flaky -> "flaky"

type t = {
  bursts : burst list;
  channel : channel;
  window : int; (* 0 = backoff retransmission, >0 = sliding window *)
  synchrony : Mp.Synchrony.t option;
}

let none = { bursts = []; channel = Reliable; window = 0; synchrony = None }

let is_none t =
  t.bursts = [] && t.channel = Reliable && t.window = 0 && t.synchrony = None

(* Canonical burst order: by round, then textual; canonical domain order
   is r b q f c with duplicates removed, so of_string/to_string round
   trips on canonical forms. *)
let normalize_domains ds =
  List.filter (fun d -> List.mem d ds) all_domains

let burst_to_string b =
  Printf.sprintf "%d:%s:%s" b.at
    (String.concat ""
       (List.map (fun d -> String.make 1 (domain_letter d)) b.domains))
    (match b.victims with All -> "all" | Count k -> string_of_int k)

let to_string t =
  if is_none t then "none"
  else
    let bursts = String.concat "+" (List.map burst_to_string t.bursts) in
    let bursts = if bursts = "" then "none" else bursts in
    let extras =
      (match t.channel with
      | Reliable -> []
      | c -> [ channel_to_string c ])
      @ (if t.window > 0 then [ Printf.sprintf "win=%d" t.window ] else [])
      @
      match t.synchrony with
      | None -> []
      | Some sy ->
          (* ':' not '/': schedule strings embed in '/'-joined campaign
             scenario ids. *)
          [ Printf.sprintf "ps=%d:%d" (Mp.Synchrony.delta sy)
              (Mp.Synchrony.gst sy) ]
    in
    String.concat "@" (bursts :: extras)

let parse_burst s =
  match String.split_on_char ':' s with
  | [ at; letters; victims ] -> (
      let ( let* ) = Result.bind in
      let* at =
        match int_of_string_opt at with
        | Some a when a >= 0 -> Ok a
        | _ -> Error (Printf.sprintf "bad burst round %S" at)
      in
      let* domains =
        String.fold_left
          (fun acc ch ->
            let* acc = acc in
            let* d = domain_of_letter ch in
            Ok (d :: acc))
          (Ok []) letters
      in
      let domains = normalize_domains (List.rev domains) in
      let* () =
        if domains = [] then Error (Printf.sprintf "burst %S has no domains" s)
        else Ok ()
      in
      match victims with
      | "all" -> Ok { at; domains; victims = All }
      | k -> (
          match int_of_string_opt k with
          | Some k when k >= 1 -> Ok { at; domains; victims = Count k }
          | _ -> Error (Printf.sprintf "bad victim count %S" k)))
  | _ ->
      Error
        (Printf.sprintf "bad burst %S (expected <round>:<domains>:<all|k>)" s)

let parse_extra acc tok =
  let ( let* ) = Result.bind in
  let* channel, window, synchrony = acc in
  match tok with
  | "reliable" -> Ok (Reliable, window, synchrony)
  | "lossy" -> Ok (Lossy, window, synchrony)
  | "flaky" -> Ok (Flaky, window, synchrony)
  | _ when String.length tok > 4 && String.sub tok 0 4 = "win=" -> (
      match int_of_string_opt (String.sub tok 4 (String.length tok - 4)) with
      | Some w when w >= 1 -> Ok (channel, w, synchrony)
      | _ -> Error (Printf.sprintf "bad window %S (expected win=<k>)" tok))
  | _ when String.length tok > 3 && String.sub tok 0 3 = "ps=" -> (
      let body = String.sub tok 3 (String.length tok - 3) in
      match String.split_on_char ':' body with
      | [ d; g ] -> (
          match (int_of_string_opt d, int_of_string_opt g) with
          | Some delta, Some gst when delta >= 1 && gst >= 0 ->
              Ok (channel, window, Some (Mp.Synchrony.make ~delta ~gst))
          | _ ->
              Error
                (Printf.sprintf "bad synchrony %S (expected ps=<delta>:<gst>)"
                   tok))
      | _ ->
          Error
            (Printf.sprintf "bad synchrony %S (expected ps=<delta>:<gst>)" tok))
  | _ ->
      Error
        (Printf.sprintf
           "unknown channel modifier %S (expected a preset, win=<k> or \
            ps=<delta>:<gst>)"
           tok)

let of_string s =
  let s = String.trim s in
  let ( let* ) = Result.bind in
  let* () = if s = "" then Error "empty schedule" else Ok () in
  let body, extras =
    match String.split_on_char '@' s with
    | [] -> ("", [])
    | body :: extras -> (body, extras)
  in
  let* channel, window, synchrony =
    List.fold_left parse_extra (Ok (Reliable, 0, None)) extras
  in
  let* bursts =
    if body = "none" || body = "" then Ok []
    else
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* b = parse_burst part in
          Ok (b :: acc))
        (Ok [])
        (String.split_on_char '+' body)
  in
  let bursts =
    List.sort
      (fun a b ->
        match compare a.at b.at with
        | 0 -> compare (burst_to_string a) (burst_to_string b)
        | c -> c)
      (List.rev bursts)
  in
  Ok { bursts; channel; window; synchrony }

let knobs t = channel_knobs t.channel
