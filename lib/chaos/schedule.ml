type domain = Routing | Buffers | Queues | Flags | Crash

let all_domains = [ Routing; Buffers; Queues; Flags; Crash ]

let domain_letter = function
  | Routing -> 'r'
  | Buffers -> 'b'
  | Queues -> 'q'
  | Flags -> 'f'
  | Crash -> 'c'

let domain_of_letter = function
  | 'r' -> Ok Routing
  | 'b' -> Ok Buffers
  | 'q' -> Ok Queues
  | 'f' -> Ok Flags
  | 'c' -> Ok Crash
  | ch -> Error (Printf.sprintf "unknown fault domain %C (expected r b q f c)" ch)

type victims = All | Count of int

type burst = { at : int; domains : domain list; victims : victims }

type channel = Reliable | Lossy | Flaky

type knobs = { loss : float; duplication : float; reorder : float }

let channel_knobs = function
  | Reliable -> { loss = 0.; duplication = 0.; reorder = 0. }
  | Lossy -> { loss = 0.15; duplication = 0.05; reorder = 0.10 }
  | Flaky -> { loss = 0.30; duplication = 0.10; reorder = 0.20 }

let channel_to_string = function
  | Reliable -> "reliable"
  | Lossy -> "lossy"
  | Flaky -> "flaky"

type t = { bursts : burst list; channel : channel }

let none = { bursts = []; channel = Reliable }
let is_none t = t.bursts = [] && t.channel = Reliable

(* Canonical burst order: by round, then textual; canonical domain order
   is r b q f c with duplicates removed, so of_string/to_string round
   trips on canonical forms. *)
let normalize_domains ds =
  List.filter (fun d -> List.mem d ds) all_domains

let burst_to_string b =
  Printf.sprintf "%d:%s:%s" b.at
    (String.concat ""
       (List.map (fun d -> String.make 1 (domain_letter d)) b.domains))
    (match b.victims with All -> "all" | Count k -> string_of_int k)

let to_string t =
  if is_none t then "none"
  else
    let bursts = String.concat "+" (List.map burst_to_string t.bursts) in
    let bursts = if bursts = "" then "none" else bursts in
    match t.channel with
    | Reliable -> bursts
    | c -> bursts ^ "@" ^ channel_to_string c

let parse_burst s =
  match String.split_on_char ':' s with
  | [ at; letters; victims ] -> (
      let ( let* ) = Result.bind in
      let* at =
        match int_of_string_opt at with
        | Some a when a >= 0 -> Ok a
        | _ -> Error (Printf.sprintf "bad burst round %S" at)
      in
      let* domains =
        String.fold_left
          (fun acc ch ->
            let* acc = acc in
            let* d = domain_of_letter ch in
            Ok (d :: acc))
          (Ok []) letters
      in
      let domains = normalize_domains (List.rev domains) in
      let* () =
        if domains = [] then Error (Printf.sprintf "burst %S has no domains" s)
        else Ok ()
      in
      match victims with
      | "all" -> Ok { at; domains; victims = All }
      | k -> (
          match int_of_string_opt k with
          | Some k when k >= 1 -> Ok { at; domains; victims = Count k }
          | _ -> Error (Printf.sprintf "bad victim count %S" k)))
  | _ ->
      Error
        (Printf.sprintf "bad burst %S (expected <round>:<domains>:<all|k>)" s)

let of_string s =
  let s = String.trim s in
  let ( let* ) = Result.bind in
  let* () = if s = "" then Error "empty schedule" else Ok () in
  let body, channel =
    match String.index_opt s '@' with
    | None -> (s, Ok Reliable)
    | Some i ->
        ( String.sub s 0 i,
          match String.sub s (i + 1) (String.length s - i - 1) with
          | "reliable" -> Ok Reliable
          | "lossy" -> Ok Lossy
          | "flaky" -> Ok Flaky
          | c -> Error (Printf.sprintf "unknown channel preset %S" c) )
  in
  let* channel = channel in
  let* bursts =
    if body = "none" || body = "" then Ok []
    else
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* b = parse_burst part in
          Ok (b :: acc))
        (Ok [])
        (String.split_on_char '+' body)
  in
  let bursts =
    List.sort
      (fun a b ->
        match compare a.at b.at with
        | 0 -> compare (burst_to_string a) (burst_to_string b)
        | c -> c)
      (List.rev bursts)
  in
  Ok { bursts; channel }

let knobs t = channel_knobs t.channel
