(** Applying one fault burst to a live configuration.

    All corruption stays inside the variable domains (the [Harness.Fault]
    invariants): planted ghosts carry [Invalid] tags so the oracles count
    them against Proposition 4's budget, never against SP. *)

val corrupt_state :
  Prng.Splitmix.t ->
  Topology.Graph.t ->
  p:int ->
  domains:Schedule.domain list ->
  Ssmfp.State.t ->
  Ssmfp.State.t
(** Apply the listed domains (in order) to processor [p]'s state. Shared
    by the state-model runner (through {!burst}) and the mp runner
    (through [Ssmfp_mp.set_core]). [Crash] here means an amnesia restart
    that keeps the outbox. *)

val pick_victims :
  Prng.Splitmix.t -> Topology.Graph.t -> Schedule.victims -> int list
(** Victim pids, ascending ([Count k] sampled without replacement,
    clamped to [n]). *)

val domains_tag : Schedule.domain list -> string
(** Canonical letter string, e.g. ["rbq"]. *)

val burst :
  Prng.Splitmix.t ->
  ?journal:Obs.Journal.t ->
  Schedule.burst ->
  Harness.Runner.engine ->
  int
(** Corrupt the burst's victims in the running engine via
    [Sim.Engine.set_state] (so incremental mode re-evaluates exactly the
    dirty sets), journaling one [Fault_injected] entry per victim.
    Returns the victim count. *)
