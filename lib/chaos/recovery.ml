type report = {
  burst_rounds : int list;
  relegitimacy_round : int;
  post_generated : int;
  post_delivered_once : int;
  post_duplicated : int;
  post_lost : int;
  invalid_total : int;
  invalid_worst_window : int;
  invalid_budget : int;
  invalid_budget_ok : bool;
  recovery_rounds : int;
  envelope_rounds : int;
  within_envelope : bool;
  quiescent : bool;
  ok : bool;
  violations : string list;
}

(* Δ^D saturating at a ceiling: the envelope is only compared against
   recovery times, which are far below the cap in any feasible run. *)
let pow_capped base exp =
  let cap = 1_000_000_000 in
  let rec go acc e =
    if e <= 0 then acc
    else if acc >= cap / max base 1 then cap
    else go (acc * max base 1) (e - 1)
  in
  if exp <= 0 then 1 else go 1 exp

(* Assign a round to the window opened by the latest boundary <= round.
   Boundaries are 0 :: burst rounds, so window 0 is the pre-burst run. *)
let window_of boundaries round =
  let rec go i best = function
    | [] -> best
    | b :: rest -> if b <= round then go (i + 1) i rest else best
  in
  go 0 0 boundaries

let analyze ~oracle ~burst_rounds ~n ~delta ~diameter ~final_round ~quiescent
    ~routing_settled_round () =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let burst_rounds = List.sort compare burst_rounds in
  let last_burst = List.fold_left max 0 burst_rounds in
  let invalid_log = Harness.Oracle.invalid_delivery_log oracle in
  let invalid_total = List.length invalid_log in
  (* Proposition 4, amortized over fault events: each fault event (the
     arbitrary initial configuration, then every burst) can seed at most
     2n invalid deliveries per destination. The purge of one event's
     forgeries may well cross the next burst's boundary, so the sound
     check is cumulative: through the end of window k, a destination may
     have received at most (k+1)·2n invalid messages. *)
  let boundaries = 0 :: burst_rounds in
  let n_windows = List.length boundaries in
  let windows = Hashtbl.create 16 in
  List.iter
    (fun (round, dest) ->
      let w = window_of boundaries round in
      let counts =
        match Hashtbl.find_opt windows dest with
        | Some a -> a
        | None ->
            let a = Array.make n_windows 0 in
            Hashtbl.add windows dest a;
            a
      in
      counts.(w) <- counts.(w) + 1)
    invalid_log;
  let invalid_worst_window =
    Hashtbl.fold
      (fun _ counts acc -> Array.fold_left max acc counts)
      windows 0
  in
  let invalid_budget = 2 * n in
  let invalid_budget_ok = ref true in
  let dests =
    List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) windows [])
  in
  List.iter
    (fun dest ->
      let counts = Hashtbl.find windows dest in
      let running = ref 0 in
      Array.iteri
        (fun k c ->
          running := !running + c;
          if !invalid_budget_ok && !running > (k + 1) * invalid_budget then begin
            invalid_budget_ok := false;
            add
              "destination %d received %d invalid messages through fault event \
               %d (> %d*2n = %d)"
              dest !running (k + 1) (k + 1)
              ((k + 1) * invalid_budget)
          end)
        counts)
    dests;
  let invalid_budget_ok = !invalid_budget_ok in
  (* Re-legitimacy point: after the last burst, once the last invalid
     delivery has happened the system can no longer emit traffic the
     faults forged — every ghost generated after this round falls under
     the snap-stabilization contract. *)
  let last_invalid =
    List.fold_left (fun acc (round, _) -> max acc round) 0 invalid_log
  in
  let relegitimacy_round = max last_burst last_invalid in
  (* Snap-stabilization binds SP to every request made after the faults
     stop — strictly after the last burst round, even while leftover
     invalid messages are still being purged. (Generations in the burst
     round itself are excluded: within that round they may predate the
     strike and have been wiped by it.) *)
  let post =
    List.filter
      (fun (_, gen, _) ->
        match gen with Some r -> r > last_burst | None -> false)
      (Harness.Oracle.ghost_views oracle)
  in
  let post_generated = List.length post in
  let post_delivered_once =
    List.length (List.filter (fun (_, _, ds) -> List.length ds = 1) post)
  in
  let post_duplicated =
    List.length (List.filter (fun (_, _, ds) -> List.length ds > 1) post)
  in
  let post_lost = List.length (List.filter (fun (_, _, ds) -> ds = []) post) in
  if post_duplicated > 0 then
    add "%d post-recovery message(s) delivered more than once" post_duplicated;
  if quiescent && post_lost > 0 then
    add "%d post-recovery message(s) lost" post_lost;
  if not quiescent then
    add "system did not re-reach quiescence after the last burst";
  (* Rounds-to-recovery vs the Proposition 5 envelope O(max(R_A, Δ^D)):
     R_A is the rounds the routing protocol still needed after the last
     burst. The constant-free comparison is informational — the paper's
     bound hides multiplicative constants — and not part of [ok]. *)
  let recovery_rounds = if quiescent then max 0 (final_round - last_burst) else -1 in
  let r_a = max 0 (routing_settled_round - last_burst) in
  let envelope_rounds = max 1 (max r_a (pow_capped (max delta 1) diameter)) in
  let within_envelope = quiescent && recovery_rounds <= envelope_rounds in
  let ok = !violations = [] in
  {
    burst_rounds;
    relegitimacy_round;
    post_generated;
    post_delivered_once;
    post_duplicated;
    post_lost;
    invalid_total;
    invalid_worst_window;
    invalid_budget;
    invalid_budget_ok;
    recovery_rounds;
    envelope_rounds;
    within_envelope;
    quiescent;
    ok;
    violations = List.rev !violations;
  }

let to_json (r : report) =
  Obs.Json.Obj
    [
      ("burst_rounds", Obs.Json.List (List.map (fun b -> Obs.Json.Int b) r.burst_rounds));
      ("relegitimacy_round", Obs.Json.Int r.relegitimacy_round);
      ("post_generated", Obs.Json.Int r.post_generated);
      ("post_delivered_once", Obs.Json.Int r.post_delivered_once);
      ("post_duplicated", Obs.Json.Int r.post_duplicated);
      ("post_lost", Obs.Json.Int r.post_lost);
      ("invalid_total", Obs.Json.Int r.invalid_total);
      ("invalid_worst_window", Obs.Json.Int r.invalid_worst_window);
      ("invalid_budget", Obs.Json.Int r.invalid_budget);
      ("recovery_rounds", Obs.Json.Int r.recovery_rounds);
      ("envelope_rounds", Obs.Json.Int r.envelope_rounds);
      ("within_envelope", Obs.Json.Bool r.within_envelope);
      ("quiescent", Obs.Json.Bool r.quiescent);
      ("ok", Obs.Json.Bool r.ok);
      ("violations", Obs.Json.List (List.map (fun v -> Obs.Json.String v) r.violations));
    ]
