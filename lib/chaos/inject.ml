let payload_pool = [ "chaos"; "msg"; "x"; "hot" ]

(* One domain's corruption of one processor's state, staying inside the
   variable domains DESIGN.md fixes (the same invariants as
   Harness.Fault's initial corruption): colors in [0..Δ], last/via in
   N_p ∪ {p}, dist in [0..n], queues permutations of N_p ∪ {p}. *)
let apply_domain rng g ~p (st : Ssmfp.State.t) (d : Schedule.domain) =
  let delta = Topology.Graph.max_degree g in
  match d with
  | Schedule.Routing -> Ssmfp.State.with_routing st (Routing.Selfstab.init_random rng g p)
  | Schedule.Buffers ->
      let slots =
        Array.map
          (fun (sl : Ssmfp.State.slot) ->
            let buf old =
              if Prng.Splitmix.bernoulli rng 0.5 then
                Some (Harness.Fault.invalid_message rng g ~at:p ~delta payload_pool)
              else old
            in
            { sl with Ssmfp.State.buf_r = buf sl.Ssmfp.State.buf_r;
                      buf_e = buf sl.Ssmfp.State.buf_e })
          st.Ssmfp.State.slots
      in
      { st with Ssmfp.State.slots }
  | Schedule.Queues ->
      let slots =
        Array.map
          (fun (sl : Ssmfp.State.slot) ->
            { sl with Ssmfp.State.queue = Prng.Splitmix.shuffle rng sl.Ssmfp.State.queue })
          st.Ssmfp.State.slots
      in
      { st with Ssmfp.State.slots }
  | Schedule.Flags ->
      {
        st with
        Ssmfp.State.request = Prng.Splitmix.bool rng;
        rr = Prng.Splitmix.int rng (Topology.Graph.n g);
      }
  | Schedule.Crash ->
      (* Amnesia restart: every protocol variable re-initialized (with
         unstabilized routing), while the higher layer's outbox — owned
         by the application, not the protocol — survives. *)
      {
        (Ssmfp.State.clean g ~correct_routing:false p) with
        Ssmfp.State.outbox = st.Ssmfp.State.outbox;
      }

let corrupt_state rng g ~p ~domains st =
  List.fold_left (fun st d -> apply_domain rng g ~p st d) st domains

let pick_victims rng g = function
  | Schedule.All -> Topology.Graph.vertices g
  | Schedule.Count k ->
      let n = Topology.Graph.n g in
      let k = min k n in
      List.sort compare (Prng.Splitmix.sample_without_replacement rng k n)

let domains_tag domains =
  String.concat ""
    (List.map (fun d -> String.make 1 (Schedule.domain_letter d)) domains)

let burst rng ?journal (b : Schedule.burst) engine =
  let g = Sim.Engine.graph engine in
  let victims = pick_victims rng g b.Schedule.victims in
  let stats = Sim.Engine.stats engine in
  let tag = domains_tag b.Schedule.domains in
  List.iter
    (fun p ->
      let st = Sim.Engine.state engine p in
      let st' = corrupt_state rng g ~p ~domains:b.Schedule.domains st in
      Sim.Engine.set_state engine p st';
      match journal with
      | None -> ()
      | Some j ->
          Obs.Journal.record_fault j ~step:stats.Sim.Engine.steps
            ~round:stats.Sim.Engine.rounds ~pid:p
            ~detail:(Printf.sprintf "burst@%d:%s" b.Schedule.at tag))
    victims;
  List.length victims
