let crash_span = 50

type outcome = {
  mp_outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;
  max_pulse : int;
  oracle : Harness.Oracle.t;
  verdict : Harness.Oracle.verdict;
  report : Recovery.report;
  fired : (int * int) list;
  aftermath_submitted : int;
  submitted : int;
  invalid_planted : int;
  channel : Mp.Ssmfp_mp.channel_stats;
  schedule : Schedule.t;
}

let apply_burst chaos_rng t (b : Schedule.burst) =
  let g = Mp.Ssmfp_mp.graph t in
  let victims = Inject.pick_victims chaos_rng g b.Schedule.victims in
  let state_domains =
    List.filter (fun d -> d <> Schedule.Crash) b.Schedule.domains
  in
  let crashes = List.mem Schedule.Crash b.Schedule.domains in
  List.iter
    (fun p ->
      if state_domains <> [] then
        Mp.Ssmfp_mp.set_core t p
          (Inject.corrupt_state chaos_rng g ~p ~domains:state_domains
             (Mp.Ssmfp_mp.core t p));
      if crashes then Mp.Ssmfp_mp.crash_process t p ~down_for:crash_span)
    victims;
  List.length victims

let run ?(spec = Harness.Fault.pristine) ?(channel_garbage = 0) ?(seed = 1)
    ?(max_deliveries = 2_000_000) ?(aftermath = 0)
    ?(prof = Obs.Prof.disabled) ~schedule graph workload =
  let knobs = Schedule.knobs schedule in
  let t =
    Mp.Ssmfp_mp.create ~spec ~channel_garbage ~loss:knobs.Schedule.loss
      ~duplication:knobs.Schedule.duplication ~reorder:knobs.Schedule.reorder
      ~seed ~prof graph workload
  in
  (* Phase spans on track 0: one per drive segment between bursts, one
     for the post-burst drain — the chaos run's wall-clock skeleton. *)
  let prof_on = Obs.Prof.enabled prof in
  let ptr = Obs.Prof.track prof 0 in
  let sp_segment = Obs.Prof.span prof "chaos.segment" in
  let sp_drain = Obs.Prof.span prof "chaos.drain" in
  let chaos_rng = Prng.Splitmix.of_int (seed + 6_700_417) in
  let invalid_planted =
    Harness.Fault.invalid_count
      (Array.init (Topology.Graph.n graph) (Mp.Ssmfp_mp.core t))
  in
  let fired = ref [] in
  let aftermath_submitted = ref 0 in
  (* Post-burst probe wave: fresh requests pushed into cores right after
     the last burst, so the recovery oracle's SP clause has traffic. *)
  let submit_aftermath () =
    let n = Topology.Graph.n graph in
    if n > 1 then
      for i = 1 to aftermath do
        let src = Prng.Splitmix.int chaos_rng n in
        let dest = (src + 1 + Prng.Splitmix.int chaos_rng (n - 1)) mod n in
        Mp.Ssmfp_mp.set_core t src
          (Ssmfp.State.push_outbox (Mp.Ssmfp_mp.core t src) ~dest
             (Printf.sprintf "aftermath-%d" i));
        incr aftermath_submitted
      done
  in
  let exhausted = ref false in
  let bursts =
    List.sort
      (fun a b -> compare a.Schedule.at b.Schedule.at)
      schedule.Schedule.bursts
  in
  (* Segment the schedule: drive until the synchronizer's global pulse
     reaches the burst's round, strike, resume. Pulses advance even when
     the traffic has drained (timers keep the synchronizer running), so
     a burst past quiescence still gets its turn. Each segment gets the
     full delivery budget. *)
  List.iter
    (fun b ->
      if not !exhausted then begin
        let seg_t0 = Obs.Prof.now prof in
        let seg_status =
          Mp.Ssmfp_mp.drive ~max_deliveries
            ~stop:(fun t -> Mp.Ssmfp_mp.max_pulse t >= b.Schedule.at)
            t
        in
        if prof_on then Obs.Prof.record ptr sp_segment ~start:seg_t0;
        match seg_status with
        | `Stopped ->
            let pulse = Mp.Ssmfp_mp.max_pulse t in
            let victims = apply_burst chaos_rng t b in
            fired := (pulse, victims) :: !fired;
            if List.length !fired = List.length bursts then submit_aftermath ()
        | `Idle | `Max_deliveries -> exhausted := true
      end)
    bursts;
  let mp_outcome =
    if !exhausted then `Max_deliveries
    else begin
      let drain_t0 = Obs.Prof.now prof in
      let status =
        Mp.Ssmfp_mp.drive ~max_deliveries ~stop:Mp.Ssmfp_mp.all_drained t
      in
      if prof_on then Obs.Prof.record ptr sp_drain ~start:drain_t0;
      match status with
      | `Stopped -> `All_done
      | `Idle | `Max_deliveries -> `Max_deliveries
    end
  in
  let oracle = Mp.Ssmfp_mp.oracle t in
  let n = Topology.Graph.n graph in
  let verdict =
    Harness.Oracle.check_sp oracle
      ~expected_valid:(Mp.Ssmfp_mp.expected_valid t + !aftermath_submitted)
      ~n
      ~at_quiescence:(mp_outcome = `All_done)
  in
  let fired = List.rev !fired in
  let report =
    Recovery.analyze ~oracle ~burst_rounds:(List.map fst fired) ~n
      ~delta:(Topology.Graph.max_degree graph)
      ~diameter:(try Topology.Metrics.diameter graph with _ -> 0)
      ~final_round:(Mp.Ssmfp_mp.max_pulse t)
      ~quiescent:(mp_outcome = `All_done)
      ~routing_settled_round:0 ()
  in
  {
    mp_outcome;
    channel_deliveries = Mp.Ssmfp_mp.channel_deliveries t;
    max_pulse = Mp.Ssmfp_mp.max_pulse t;
    oracle;
    verdict;
    report;
    fired;
    aftermath_submitted = !aftermath_submitted;
    submitted = Mp.Ssmfp_mp.expected_valid t + !aftermath_submitted;
    invalid_planted;
    channel = Mp.Ssmfp_mp.channel_stats t;
    schedule;
  }
