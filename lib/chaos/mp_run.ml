let crash_span = 50

type snapshot_outcome = {
  snapshot_every : int;
  epochs : int;
  cuts : int;
  consistent : int;
  shadow_ok : int;
  abandoned : int;
  markers : Mp.Ssmfp_mp.marker_stats;
  markers_resent : int;
  cut_latencies : int list;
  online_violations : string list;
  relegitimacy_bracket : (int * int option) option;
  cut_verdict : Harness.Oracle.verdict option;
  cut_report : Recovery.report option;
  cut_agrees : bool;
}

type outcome = {
  mp_outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;
  max_pulse : int;
  oracle : Harness.Oracle.t;
  verdict : Harness.Oracle.verdict;
  report : Recovery.report;
  fired : (int * int) list;
  aftermath_submitted : int;
  submitted : int;
  invalid_planted : int;
  channel : Mp.Ssmfp_mp.channel_stats;
  window : int;
  window_retransmits : int;
  schedule : Schedule.t;
  snapshot : snapshot_outcome option;
}

let apply_burst chaos_rng t (b : Schedule.burst) =
  let g = Mp.Ssmfp_mp.graph t in
  let victims = Inject.pick_victims chaos_rng g b.Schedule.victims in
  let state_domains =
    List.filter (fun d -> d <> Schedule.Crash) b.Schedule.domains
  in
  let crashes = List.mem Schedule.Crash b.Schedule.domains in
  List.iter
    (fun p ->
      if state_domains <> [] then
        Mp.Ssmfp_mp.set_core t p
          (Inject.corrupt_state chaos_rng g ~p ~domains:state_domains
             (Mp.Ssmfp_mp.core t p));
      if crashes then Mp.Ssmfp_mp.crash_process t p ~down_for:crash_span)
    victims;
  List.length victims

(* How many deliveries between engine ticks (marker-retransmission
   heartbeat) while an epoch is active. *)
let tick_chunk = 128

let run ?(spec = Harness.Fault.pristine) ?(channel_garbage = 0) ?(seed = 1)
    ?(max_deliveries = 2_000_000) ?(aftermath = 0) ?(snapshot_every = 0)
    ?on_cut ?(prof = Obs.Prof.disabled) ?window ?synchrony ?rto ~schedule graph
    workload =
  let knobs = Schedule.knobs schedule in
  (* Explicit arguments override the schedule's own channel modifiers
     (the CLI flags ride here; campaign scenarios encode them in the
     schedule string). *)
  let window =
    match window with Some w -> w | None -> schedule.Schedule.window
  in
  let synchrony =
    match synchrony with Some _ -> synchrony | None -> schedule.Schedule.synchrony
  in
  let t =
    Mp.Ssmfp_mp.create ~spec ~channel_garbage ~loss:knobs.Schedule.loss
      ~duplication:knobs.Schedule.duplication ~reorder:knobs.Schedule.reorder
      ~seed ~prof ~window ?synchrony ?rto graph workload
  in
  let n = Topology.Graph.n graph in
  (* Phase spans on track 0: one per drive segment between bursts, one
     for the post-burst drain, one for the final-snapshot completion —
     the chaos run's wall-clock skeleton. Each phase also attributes its
     own delivery count to a counter, so Perfetto lanes show where the
     traffic (not just the wall-clock) went. *)
  let prof_on = Obs.Prof.enabled prof in
  let ptr = Obs.Prof.track prof 0 in
  let sp_segment = Obs.Prof.span prof "chaos.segment" in
  let sp_drain = Obs.Prof.span prof "chaos.drain" in
  let sp_snap_drain = Obs.Prof.span prof "chaos.snapshot_drain" in
  let c_segment_del = Obs.Prof.counter prof "chaos.segment_deliveries" in
  let c_drain_del = Obs.Prof.counter prof "chaos.drain_deliveries" in
  let c_snap_del = Obs.Prof.counter prof "chaos.snapshot_deliveries" in
  let phase_deliveries counter d0 =
    if prof_on then
      Obs.Prof.add ptr counter (Mp.Ssmfp_mp.channel_deliveries t - d0)
  in
  let chaos_rng = Prng.Splitmix.of_int (seed + 6_700_417) in
  let invalid_planted =
    Harness.Fault.invalid_count (Array.init n (Mp.Ssmfp_mp.core t))
  in
  let fired = ref [] in
  let aftermath_submitted = ref 0 in
  (* Post-burst probe wave: fresh requests pushed into cores right after
     the last burst, so the recovery oracle's SP clause has traffic. *)
  let submit_aftermath () =
    if n > 1 then
      for i = 1 to aftermath do
        let src = Prng.Splitmix.int chaos_rng n in
        let dest = (src + 1 + Prng.Splitmix.int chaos_rng (n - 1)) mod n in
        Mp.Ssmfp_mp.set_core t src
          (Ssmfp.State.push_outbox (Mp.Ssmfp_mp.core t src) ~dest
             (Printf.sprintf "aftermath-%d" i));
        incr aftermath_submitted
      done
  in
  (* In-band snapshot layer: attached (and initiated every
     [snapshot_every] deliveries) only when asked for; a snapshot-off
     run never touches it and replays byte-identically. Completed cuts
     are folded into the cut oracle online, between drive chunks. *)
  let snap =
    if snapshot_every > 0 then
      Some (Snapshot.Ssmfp_link.attach ~prof ~seed t)
    else None
  in
  let snap_oracle = Snapshot.Oracle.create ~n in
  let last_cut = ref None in
  let harvest link =
    List.iter
      (fun cut ->
        let invalid_budget = (List.length !fired + 1) * 2 * n in
        Snapshot.Oracle.observe_cut snap_oracle ~invalid_budget cut;
        last_cut := Some cut;
        match on_cut with Some f -> f cut | None -> ())
      (Snapshot.Ssmfp_link.take_completed link)
  in
  let next_init = ref snapshot_every in
  let last_tick = ref 0 in
  (* One chaos phase (segment or drain): with snapshots on, the drive is
     chunked at initiation/tick boundaries (measured in deliveries) so
     the engine can retransmit markers and completed cuts are checked
     online; the phase's delivery budget is preserved across chunks. *)
  let drive_phase ~stop =
    match snap with
    | None -> Mp.Ssmfp_mp.drive ~max_deliveries ~stop t
    | Some link ->
        let d0 = Mp.Ssmfp_mp.channel_deliveries t in
        let rec loop () =
          let spent = Mp.Ssmfp_mp.channel_deliveries t - d0 in
          if spent >= max_deliveries then `Max_deliveries
          else begin
            let bound = min !next_init (!last_tick + tick_chunk) in
            let status =
              Mp.Ssmfp_mp.drive
                ~max_deliveries:(max_deliveries - spent)
                ~stop:(fun t ->
                  stop t || Mp.Ssmfp_mp.channel_deliveries t >= bound)
                t
            in
            let d = Mp.Ssmfp_mp.channel_deliveries t in
            if d >= !next_init then begin
              Snapshot.Ssmfp_link.initiate link;
              next_init := d + snapshot_every
            end;
            if d >= !last_tick + tick_chunk then begin
              last_tick := d;
              Snapshot.Ssmfp_link.tick link
            end;
            harvest link;
            match status with
            | `Stopped -> if stop t then `Stopped else loop ()
            | (`Idle | `Max_deliveries) as s -> s
          end
        in
        loop ()
  in
  let exhausted = ref false in
  let bursts =
    List.sort
      (fun a b -> compare a.Schedule.at b.Schedule.at)
      schedule.Schedule.bursts
  in
  (* Segment the schedule: drive until the synchronizer's global pulse
     reaches the burst's round, strike, resume. Pulses advance even when
     the traffic has drained (timers keep the synchronizer running), so
     a burst past quiescence still gets its turn. Each segment gets the
     full delivery budget. *)
  List.iter
    (fun b ->
      if not !exhausted then begin
        let seg_t0 = Obs.Prof.now prof in
        let seg_d0 = Mp.Ssmfp_mp.channel_deliveries t in
        let seg_status =
          drive_phase ~stop:(fun t -> Mp.Ssmfp_mp.max_pulse t >= b.Schedule.at)
        in
        if prof_on then Obs.Prof.record ptr sp_segment ~start:seg_t0;
        phase_deliveries c_segment_del seg_d0;
        match seg_status with
        | `Stopped ->
            let pulse = Mp.Ssmfp_mp.max_pulse t in
            let victims = apply_burst chaos_rng t b in
            fired := (pulse, victims) :: !fired;
            if List.length !fired = List.length bursts then submit_aftermath ()
        | `Idle | `Max_deliveries -> exhausted := true
      end)
    bursts;
  let mp_outcome =
    if !exhausted then `Max_deliveries
    else begin
      let drain_t0 = Obs.Prof.now prof in
      let drain_d0 = Mp.Ssmfp_mp.channel_deliveries t in
      let status = drive_phase ~stop:Mp.Ssmfp_mp.all_drained in
      if prof_on then Obs.Prof.record ptr sp_drain ~start:drain_t0;
      phase_deliveries c_drain_del drain_d0;
      match status with
      | `Stopped -> `All_done
      | `Idle | `Max_deliveries -> `Max_deliveries
    end
  in
  (* Final-snapshot completion: at quiescence, one more cut whose
     ledgers hold the whole history — the cut the final verdict replay
     reads. Driven by timer steps and marker deliveries only (app
     traffic has drained), in its own span so the Perfetto lanes keep
     this work out of the drain's account. *)
  (match snap with
  | Some link when mp_outcome = `All_done ->
      let t0 = Obs.Prof.now prof in
      let d0 = Mp.Ssmfp_mp.channel_deliveries t in
      Snapshot.Ssmfp_link.initiate link;
      let guard = ref 2_000 in
      while Snapshot.Ssmfp_link.active link && !guard > 0 do
        decr guard;
        (match
           Mp.Ssmfp_mp.drive ~max_deliveries:tick_chunk
             ~stop:(fun _ -> not (Snapshot.Ssmfp_link.active link))
             t
         with
        | `Stopped | `Idle | `Max_deliveries -> ());
        Snapshot.Ssmfp_link.tick link
      done;
      harvest link;
      if prof_on then Obs.Prof.record ptr sp_snap_drain ~start:t0;
      phase_deliveries c_snap_del d0
  | _ -> ());
  (* Surface the profiling-ring overwrite accounting as counters, so
     saturated runs show their blind spots in --prof-summary and traces
     (a zero "samples_lost" is what licenses trusting the latency
     histograms). *)
  if prof_on then begin
    let ov = Mp.Ssmfp_mp.prof_overwrites t in
    Obs.Prof.add ptr
      (Obs.Prof.counter prof "mp.stamps_evicted")
      ov.Mp.Network.stamps_evicted;
    Obs.Prof.add ptr
      (Obs.Prof.counter prof "mp.samples_lost")
      ov.Mp.Network.samples_lost;
    Obs.Prof.add ptr
      (Obs.Prof.counter prof "mp.hops_evicted")
      ov.Mp.Network.hops_evicted
  end;
  let oracle = Mp.Ssmfp_mp.oracle t in
  let submitted = Mp.Ssmfp_mp.expected_valid t + !aftermath_submitted in
  let verdict =
    Harness.Oracle.check_sp oracle ~expected_valid:submitted ~n
      ~at_quiescence:(mp_outcome = `All_done)
  in
  let fired = List.rev !fired in
  let burst_rounds = List.map fst fired in
  let delta = Topology.Graph.max_degree graph in
  let diameter = try Topology.Metrics.diameter graph with _ -> 0 in
  let final_round = Mp.Ssmfp_mp.max_pulse t in
  let quiescent = mp_outcome = `All_done in
  let report =
    Recovery.analyze ~oracle ~burst_rounds ~n ~delta ~diameter ~final_round
      ~quiescent ~routing_settled_round:0 ()
  in
  let snapshot =
    Option.map
      (fun link ->
        let stats = Snapshot.Ssmfp_link.stats link in
        let cut_verdict, cut_report =
          match !last_cut with
          | None -> (None, None)
          | Some cut ->
              let replayed = Snapshot.Oracle.replay cut in
              let v =
                Harness.Oracle.check_sp replayed ~expected_valid:submitted ~n
                  ~at_quiescence:quiescent
              in
              let r =
                Recovery.analyze ~oracle:replayed ~burst_rounds ~n ~delta
                  ~diameter ~final_round ~quiescent ~routing_settled_round:0 ()
              in
              (Some v, Some r)
        in
        let cut_agrees =
          match (cut_verdict, cut_report) with
          | Some cv, Some cr ->
              cv.Harness.Oracle.ok = verdict.Harness.Oracle.ok
              && cr.Recovery.ok = report.Recovery.ok
          | _ -> false
        in
        {
          snapshot_every;
          epochs = stats.Snapshot.Engine.epochs_started;
          cuts = Snapshot.Oracle.cuts_seen snap_oracle;
          consistent = Snapshot.Oracle.consistent_cuts snap_oracle;
          shadow_ok = Snapshot.Oracle.shadow_ok_cuts snap_oracle;
          abandoned = stats.Snapshot.Engine.abandoned;
          markers = Snapshot.Ssmfp_link.marker_stats link;
          markers_resent = stats.Snapshot.Engine.markers_resent;
          cut_latencies = Snapshot.Oracle.latencies snap_oracle;
          online_violations = Snapshot.Oracle.violations snap_oracle;
          relegitimacy_bracket = Snapshot.Oracle.relegitimacy_bracket snap_oracle;
          cut_verdict;
          cut_report;
          cut_agrees;
        })
      snap
  in
  {
    mp_outcome;
    channel_deliveries = Mp.Ssmfp_mp.channel_deliveries t;
    max_pulse = Mp.Ssmfp_mp.max_pulse t;
    oracle;
    verdict;
    report;
    fired;
    aftermath_submitted = !aftermath_submitted;
    submitted;
    invalid_planted;
    channel = Mp.Ssmfp_mp.channel_stats t;
    window = Mp.Ssmfp_mp.window t;
    window_retransmits = Mp.Ssmfp_mp.window_retransmits t;
    schedule;
    snapshot;
  }
