type outcome = {
  run : Harness.Runner.result;
  report : Recovery.report;
  fired : (int * int) list;
  aftermath_submitted : int;
  sp_verdict : Harness.Oracle.verdict;
  schedule : Schedule.t;
}

let graph_meta g =
  ( Topology.Graph.n g,
    Topology.Graph.max_degree g,
    try Topology.Metrics.diameter g with _ -> 0 )

let analyze_run schedule fired ~aftermath_submitted (run : Harness.Runner.result)
    g =
  let n, delta, diameter = graph_meta g in
  let report =
    Recovery.analyze ~oracle:run.Harness.Runner.oracle
      ~burst_rounds:(List.map fst fired) ~n ~delta ~diameter
      ~final_round:run.Harness.Runner.stats.Sim.Engine.rounds
      ~quiescent:(run.Harness.Runner.outcome = `Quiescent)
      ~routing_settled_round:run.Harness.Runner.routing_settled_round ()
  in
  let sp_verdict =
    if aftermath_submitted = 0 then run.Harness.Runner.verdict
    else
      Harness.Oracle.check_sp run.Harness.Runner.oracle
        ~expected_valid:(run.Harness.Runner.submitted + aftermath_submitted)
        ~n
        ~at_quiescence:(run.Harness.Runner.outcome = `Quiescent)
  in
  {
    run;
    report;
    fired = List.rev fired;
    aftermath_submitted;
    sp_verdict;
    schedule;
  }

let run ?obs ?(aftermath = 0) ?(prof = Obs.Prof.disabled) ~schedule
    (cfg : Harness.Runner.config) =
  let prof_on = Obs.Prof.enabled prof in
  let ptr = Obs.Prof.track prof 0 in
  let sp_run = Obs.Prof.span prof "chaos.run" in
  let run_t0 = Obs.Prof.now prof in
  let finish outcome =
    if prof_on then Obs.Prof.record ptr sp_run ~start:run_t0;
    outcome
  in
  if schedule.Schedule.bursts = [] then
    (* Zero-burst schedules take the plain runner's code path untouched
       (inject = None), which is what makes them byte-identical to
       Harness.Runner.run — events, stats and final configuration. *)
    let run = Harness.Runner.run ?obs { cfg with Harness.Runner.inject = None } in
    finish
      (analyze_run schedule [] ~aftermath_submitted:0 run
         cfg.Harness.Runner.graph)
  else begin
    (* The chaos stream is derived from the scenario seed but never
       shared with the runner's fault/daemon streams, so the base
       execution's draws are those of the burst-free run until the first
       burst lands. *)
    let chaos_rng = Prng.Splitmix.of_int (cfg.Harness.Runner.seed + 6_700_417) in
    let journal = Option.bind obs Obs.Sink.journal in
    let pending = ref (List.sort (fun a b -> compare a.Schedule.at b.Schedule.at) schedule.Schedule.bursts) in
    let fired = ref [] in
    let aftermath_submitted = ref 0 in
    (* The probe wave behind the recovery oracle's post-burst SP check:
       fresh requests submitted right after the last burst, so the
       "delivered once-and-only-once after faults stop" clause is never
       vacuously true. *)
    let submit_aftermath engine =
      let n = Topology.Graph.n cfg.Harness.Runner.graph in
      if n > 1 then
        for i = 1 to aftermath do
          let src = Prng.Splitmix.int chaos_rng n in
          let dest = (src + 1 + Prng.Splitmix.int chaos_rng (n - 1)) mod n in
          let st = Sim.Engine.state engine src in
          Sim.Engine.set_state engine src
            (Ssmfp.State.push_outbox st ~dest (Printf.sprintf "aftermath-%d" i));
          incr aftermath_submitted
        done
    in
    let inject engine =
      let rec fire () =
        match !pending with
        | [] -> ()
        | b :: rest ->
            let round = (Sim.Engine.stats engine).Sim.Engine.rounds in
            (* Terminal counts as "now": a burst scheduled past
               quiescence strikes the quiescent configuration, and
               because this hook runs before the engine's terminal
               check, the corruption re-enables the system. *)
            if round >= b.Schedule.at || Sim.Engine.is_terminal engine then begin
              pending := rest;
              let victims = Inject.burst chaos_rng ?journal b engine in
              fired := (round, victims) :: !fired;
              if rest = [] then submit_aftermath engine;
              fire ()
            end
      in
      fire ()
    in
    let run =
      Harness.Runner.run ?obs { cfg with Harness.Runner.inject = Some inject }
    in
    finish
      (analyze_run schedule !fired ~aftermath_submitted:!aftermath_submitted run
         cfg.Harness.Runner.graph)
  end
