(** State-model chaos runs: a [Harness.Runner] execution with a fault
    schedule injected through the engine's [before_step] hook.

    The channel preset of the schedule is an mp-model concern and is
    ignored here; only the bursts matter. *)

type outcome = {
  run : Harness.Runner.result;
      (** the underlying run. Its [verdict] is the whole-run SP check,
          which bursts may legitimately fail (a [Crash] burst destroys
          in-flight valid messages); the chaos verdict is
          [report.ok]. *)
  report : Recovery.report;
  fired : (int * int) list;
      (** per burst, in firing order: (engine round it actually fired
          at, victims corrupted) — a burst scheduled past quiescence
          fires at the quiescent round instead *)
  aftermath_submitted : int;
  sp_verdict : Harness.Oracle.verdict;
      (** [run.verdict] with [expected_valid] corrected for the
          aftermath wave (identical to it when [aftermath = 0]) *)
  schedule : Schedule.t;
}

val run :
  ?obs:Obs.Sink.t ->
  ?aftermath:int ->
  ?prof:Obs.Prof.t ->
  schedule:Schedule.t ->
  Harness.Runner.config ->
  outcome
(** With an empty burst list this delegates to [Harness.Runner.run]
    with no injector installed — byte-identical events, stats and final
    configuration (pinned by [test/test_chaos.ml]). Bursts draw from a
    dedicated PRNG stream derived from [cfg.seed], so the execution
    prefix before the first burst is exactly the burst-free run.

    [aftermath] (default 0) submits that many fresh requests — random
    sources, random distinct destinations — immediately after the last
    burst fires, guaranteeing the recovery oracle's post-burst SP check
    has real traffic to bind to.

    [?prof] records a single ["chaos.run"] span on track 0 covering the
    whole execution (the state model has no message hot path to trace;
    the mp-model runs in {!Mp_run} carry the detailed instruments). *)
