(** Timed, seeded fault schedules.

    A schedule says {e when} transient faults strike a running execution
    ({!burst}s, timed in rounds — engine rounds in the state model,
    synchronizer pulses in the mp model), {e what} they corrupt (the
    {!domain}s, drawn from the same variable domains as
    [Harness.Fault]'s initial corruption) and {e whom} (the
    {!victims}), plus the reliability of the channels underneath an mp
    run (the {!channel} preset).

    Schedules have a compact string form usable inside campaign scenario
    ids (no ['/'] or [','] — bursts are joined with ['+'] and fields
    with [':']):

    {v
    none                      no faults, reliable channels
    40:rbqf:all               one burst at round 40, all four state
                              domains, every processor
    40:rb:2+90:b:1@lossy      routing+buffer burst on 2 victims at round
                              40, buffer burst on 1 victim at round 90,
                              lossy channels
    none@lossy@win=8          lossy channels, sliding-window
                              retransmission with window 8
    40:c:2@flaky@ps=8:2000    crash burst under flaky channels that turn
                              synchronous (delta = 8) at step 2000
    v}

    ['@']-separated modifiers after the burst list: a channel preset
    ([reliable] / [lossy] / [flaky]), [win=<k>] (sliding-window
    retransmission, window [k]; absent = the historical exponential
    backoff) and [ps=<delta>:<gst>] (partial-synchrony channels,
    {!Mp.Synchrony}), in any order. Defaults reproduce the historical
    behaviour exactly, and [to_string] omits defaulted modifiers, so
    every pre-existing schedule string (and the campaign scenario ids
    built from them) is unchanged.

    [of_string] accepts domains in any order with duplicates and
    normalizes to the canonical [rbqfc] order, so
    [to_string (of_string s)] is a fixpoint. *)

type domain =
  | Routing  (** routing entries re-randomized within domain *)
  | Buffers  (** invalid ghosts planted into bufR/bufE *)
  | Queues  (** fairness queues re-shuffled *)
  | Flags  (** request flag and rr cursor randomized *)
  | Crash
      (** state model: amnesia restart (protocol state reset, outbox
          kept); mp model: the process goes down for a span of scheduler
          steps and loses its synchronizer state on recovery *)

val all_domains : domain list
val domain_letter : domain -> char

type victims = All | Count of int  (** sampled without replacement *)

type burst = { at : int; domains : domain list; victims : victims }

type channel = Reliable | Lossy | Flaky

type knobs = { loss : float; duplication : float; reorder : float }

val channel_knobs : channel -> knobs
(** Presets: reliable = all 0; lossy = 0.15/0.05/0.10;
    flaky = 0.30/0.10/0.20. *)

val channel_to_string : channel -> string

type t = {
  bursts : burst list;
  channel : channel;
  window : int;
      (** retransmission layer under an mp run: 0 = exponential backoff
          (the historical default), [k > 0] = sliding window of size [k]
          ({!Mp.Window}) *)
  synchrony : Mp.Synchrony.t option;
      (** partial-synchrony channel model; [None] = fully asynchronous *)
}

val none : t
(** No bursts, reliable channels — the schedule whose runs must be
    byte-identical to plain runner runs. *)

val is_none : t -> bool

val knobs : t -> knobs

val to_string : t -> string
val of_string : string -> (t, string) result
(** Bursts come back sorted by round; [of_string (to_string t)] is the
    identity on sorted-normalized schedules. *)
