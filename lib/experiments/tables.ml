type outcome = {
  table : Harness.Report.table;
  ok : bool;
  notes : string list;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let rng_of seed = Prng.Splitmix.of_int seed

let graph_info g =
  ( Topology.Graph.n g,
    Topology.Graph.max_degree g,
    Topology.Metrics.diameter g )

let f1 = Printf.sprintf "%.1f"
let f2 = Printf.sprintf "%.2f"

type expector = {
  expect : 'a. bool -> ('a, unit, string, unit) format4 -> 'a;
}

let checker () =
  let notes = ref [] in
  let ck =
    {
      expect =
        (fun cond fmt ->
          Printf.ksprintf
            (fun s -> if not cond then notes := s :: !notes)
            fmt);
    }
  in
  let result table = { table; ok = !notes = []; notes = List.rev !notes } in
  (ck, result)

let pow_float b e = float_of_int b ** float_of_int e

(* ------------------------------------------------------------------ *)
(* E1 — Proposition 4: at most 2n invalid deliveries per destination   *)

let e1_invalid_deliveries () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [ "topology"; "n"; "planted"; "delivered to d"; "bound 2n"; "within" ]
  in
  let case name g seed =
    let n = Topology.Graph.n g in
    let dest = 0 in
    let planted = ref 0 in
    let spec = { Harness.Fault.pristine with routing = Harness.Fault.Random } in
    let cfg =
      Harness.Runner.config ~spec ~daemon:Harness.Runner.Distributed_random
        ~seed
        ~prepare:(fun states ->
          planted := Harness.Fault.fill_component g ~dest states)
        g
        (Harness.Workload.empty ~n)
    in
    let r = Harness.Runner.run cfg in
    let delivered =
      Option.value ~default:0
        (List.assoc_opt dest (Harness.Oracle.invalid_deliveries r.oracle))
    in
    ck.expect (r.outcome = `Quiescent) "E1 %s: did not reach quiescence" name;
    ck.expect (delivered <= 2 * n)
      "E1 %s: %d invalid deliveries to d exceeds 2n = %d" name delivered (2 * n);
    ck.expect (!planted = 2 * n) "E1 %s: expected to plant 2n messages" name;
    Harness.Report.add_row table
      [
        name;
        string_of_int n;
        string_of_int !planted;
        string_of_int delivered;
        string_of_int (2 * n);
        (if delivered <= 2 * n then "yes" else "NO");
      ]
  in
  case "ring" (Topology.Builders.ring 4) 11;
  case "ring" (Topology.Builders.ring 8) 12;
  case "ring" (Topology.Builders.ring 16) 13;
  case "path" (Topology.Builders.path 9) 14;
  case "random" (Topology.Builders.random_connected (rng_of 5) ~n:12 ~extra_edges:8) 15;
  case "star" (Topology.Builders.star 10) 16;
  result table

(* ------------------------------------------------------------------ *)
(* E2 — Proposition 5: worst-case delivery latency                     *)

let e2_worst_case_latency () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "n"; "Δ"; "D"; "tables"; "R_A"; "lat mean"; "lat max";
          "Δ^D"; "envelope";
        ]
  in
  let case name g routing seed =
    let n, delta, diam = graph_info g in
    let wl =
      Harness.Workload.saturating (rng_of (seed + 1000)) ~graph:g
        ~per_processor:3
    in
    let spec = { Harness.Fault.pristine with routing } in
    let cfg =
      Harness.Runner.config ~spec ~daemon:Harness.Runner.Synchronous ~seed g wl
    in
    let r = Harness.Runner.run cfg in
    let lat = Harness.Stats.summarize (Harness.Oracle.latencies r.oracle) in
    let bound = pow_float delta diam in
    let envelope =
      3. *. Float.max (float_of_int r.routing_settled_round) bound
    in
    ck.expect (r.outcome = `Quiescent && r.verdict.Harness.Oracle.ok)
      "E2 %s/%s: SP violated" name
      (match routing with Harness.Fault.Correct -> "correct" | _ -> "worst");
    ck.expect
      (lat.Harness.Stats.max <= envelope)
      "E2 %s: max latency %.0f exceeds 3*max(R_A, Δ^D) = %.0f" name
      lat.Harness.Stats.max envelope;
    Harness.Report.add_row table
      [
        name;
        string_of_int n;
        string_of_int delta;
        string_of_int diam;
        (match routing with
        | Harness.Fault.Correct -> "correct"
        | Harness.Fault.Random -> "random"
        | Harness.Fault.Worst -> "worst");
        string_of_int r.routing_settled_round;
        f1 lat.Harness.Stats.mean;
        f1 lat.Harness.Stats.max;
        f1 bound;
        f1 envelope;
      ]
  in
  List.iter
    (fun (name, g, seed) ->
      case name g Harness.Fault.Correct seed;
      case name g Harness.Fault.Worst (seed + 1))
    [
      ("path5", Topology.Builders.path 5, 21);
      ("path7", Topology.Builders.path 7, 23);
      ("ring8", Topology.Builders.ring 8, 25);
      ("star8", Topology.Builders.star 8, 27);
      ("btree7", Topology.Builders.binary_tree 7, 29);
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E3 — Proposition 6: delay and waiting time                          *)

let waiting_times oracle =
  List.concat_map
    (fun (_, rounds) ->
      match rounds with
      | [] | [ _ ] -> []
      | first :: rest ->
          let _, acc =
            List.fold_left
              (fun (prev, acc) r -> (r, float_of_int (r - prev) :: acc))
              (first, []) rest
          in
          acc)
    (Harness.Oracle.generation_rounds oracle)

let e3_delay_and_waiting () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "n"; "Δ"; "D"; "tables"; "delay mean"; "delay max";
          "wait mean"; "wait max"; "envelope";
        ]
  in
  let case name g routing seed =
    let n, delta, diam = graph_info g in
    let wl =
      Harness.Workload.uniform_random (rng_of (seed + 2000)) ~n ~per_processor:5
    in
    let spec = { Harness.Fault.pristine with routing } in
    let cfg =
      Harness.Runner.config ~spec ~daemon:Harness.Runner.Synchronous ~seed g wl
    in
    let r = Harness.Runner.run cfg in
    let delays = Harness.Stats.summarize (Harness.Oracle.delays r.oracle) in
    let waits = Harness.Stats.summarize (waiting_times r.oracle) in
    let envelope =
      3.
      *. Float.max
           (float_of_int r.routing_settled_round)
           (pow_float delta diam)
    in
    ck.expect (r.outcome = `Quiescent && r.verdict.Harness.Oracle.ok)
      "E3 %s: SP violated" name;
    ck.expect
      (delays.Harness.Stats.max <= envelope)
      "E3 %s: max delay %.0f exceeds envelope %.0f" name
      delays.Harness.Stats.max envelope;
    ck.expect
      (Float.is_nan waits.Harness.Stats.max
      || waits.Harness.Stats.max <= envelope)
      "E3 %s: max waiting %.0f exceeds envelope %.0f" name
      waits.Harness.Stats.max envelope;
    Harness.Report.add_row table
      [
        name;
        string_of_int n;
        string_of_int delta;
        string_of_int diam;
        (match routing with
        | Harness.Fault.Correct -> "correct"
        | Harness.Fault.Random -> "random"
        | Harness.Fault.Worst -> "worst");
        f1 delays.Harness.Stats.mean;
        f1 delays.Harness.Stats.max;
        f1 waits.Harness.Stats.mean;
        f1 waits.Harness.Stats.max;
        f1 envelope;
      ]
  in
  List.iter
    (fun (name, g, seed) ->
      case name g Harness.Fault.Correct seed;
      case name g Harness.Fault.Worst (seed + 1))
    [
      ("ring8", Topology.Builders.ring 8, 31);
      ("path6", Topology.Builders.path 6, 33);
      ("star8", Topology.Builders.star 8, 35);
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E4 — Proposition 7: amortized rounds per delivery                   *)

let e4_amortized () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "n"; "D"; "deliveries"; "rounds"; "rounds/delivery";
          "3D"; "Δ^D";
        ]
  in
  let case name g seed =
    let n, delta, diam = graph_info g in
    let wl =
      Harness.Workload.uniform_random (rng_of (seed + 3000)) ~n ~per_processor:3
    in
    let cfg =
      Harness.Runner.config ~daemon:Harness.Runner.Synchronous ~seed g wl
    in
    let r = Harness.Runner.run cfg in
    let delivered = Harness.Oracle.valid_delivered r.oracle in
    let per =
      float_of_int r.stats.Sim.Engine.rounds /. float_of_int (max 1 delivered)
    in
    ck.expect (r.outcome = `Quiescent && r.verdict.Harness.Oracle.ok)
      "E4 %s: SP violated" name;
    ck.expect
      (per <= float_of_int ((3 * diam) + 6))
      "E4 %s: %.2f rounds/delivery exceeds 3D + 6 = %d" name per ((3 * diam) + 6);
    Harness.Report.add_row table
      [
        name;
        string_of_int n;
        string_of_int diam;
        string_of_int delivered;
        string_of_int r.stats.Sim.Engine.rounds;
        f2 per;
        string_of_int (3 * diam);
        f1 (pow_float delta diam);
      ]
  in
  case "path3" (Topology.Builders.path 3) 41;
  case "path5" (Topology.Builders.path 5) 42;
  case "path9" (Topology.Builders.path 9) 43;
  case "path13" (Topology.Builders.path 13) 44;
  case "ring4" (Topology.Builders.ring 4) 45;
  case "ring8" (Topology.Builders.ring 8) 46;
  case "ring16" (Topology.Builders.ring 16) 47;
  result table

(* ------------------------------------------------------------------ *)
(* E5 — measured R_A (stabilization of the routing substrate)          *)

let e5_routing_stabilization () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [ "topology"; "n"; "D"; "tables"; "R_A sync"; "R_A distributed" ]
  in
  let case name g routing seed =
    let n, _, diam = graph_info g in
    let measure daemon seed =
      let spec = { Harness.Fault.pristine with routing } in
      let cfg =
        Harness.Runner.config ~spec ~daemon ~seed g
          (Harness.Workload.empty ~n)
      in
      let r = Harness.Runner.run cfg in
      ck.expect (r.outcome = `Quiescent) "E5 %s: routing did not stabilize" name;
      r.stats.Sim.Engine.rounds
    in
    let sync = measure Harness.Runner.Synchronous seed in
    let dist = measure Harness.Runner.Distributed_random (seed + 1) in
    (* One action per processor per step means the n per-destination
       waves interleave: R_A grows like n + D per destination stream,
       bounded well below n*D. The check is a runaway detector. *)
    let bound = (2 * n * max 1 diam) + 20 in
    ck.expect (sync <= bound)
      "E5 %s: synchronous R_A = %d exceeds 2nD + 20 = %d" name sync bound;
    Harness.Report.add_row table
      [
        name;
        string_of_int n;
        string_of_int diam;
        (match routing with
        | Harness.Fault.Correct -> "correct"
        | Harness.Fault.Random -> "random"
        | Harness.Fault.Worst -> "worst");
        string_of_int sync;
        string_of_int dist;
      ]
  in
  List.iter
    (fun (name, g, seed) ->
      case name g Harness.Fault.Random seed;
      case name g Harness.Fault.Worst (seed + 2))
    [
      ("path8", Topology.Builders.path 8, 51);
      ("ring8", Topology.Builders.ring 8, 55);
      ("ring16", Topology.Builders.ring 16, 57);
      ("grid4x4", Topology.Builders.grid ~rows:4 ~cols:4, 59);
      ("star8", Topology.Builders.star 8, 61);
      ( "random16",
        Topology.Builders.random_connected (rng_of 6) ~n:16 ~extra_edges:10,
        63 );
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E6 — over-cost vs the fault-free baseline                           *)

let e6_overhead_vs_baseline () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "msgs"; "ssmfp rnd/dlv"; "base rnd/dlv"; "rounds ×";
          "ssmfp mv/dlv"; "base mv/dlv"; "moves ×";
        ]
  in
  let case name g seed =
    let n, _, _ = graph_info g in
    let wl =
      Harness.Workload.uniform_random (rng_of (seed + 4000)) ~n ~per_processor:2
    in
    let total = Harness.Workload.total wl in
    let cfg =
      Harness.Runner.config ~daemon:Harness.Runner.Synchronous ~seed g wl
    in
    let r = Harness.Runner.run cfg in
    let b = Harness.Runner.run_baseline g wl in
    let delivered = Harness.Oracle.valid_delivered r.oracle in
    let b_delivered = List.length b.Baseline.Forwarding.delivered in
    ck.expect (r.outcome = `Quiescent && r.verdict.Harness.Oracle.ok)
      "E6 %s: SSMFP SP violated" name;
    ck.expect (b_delivered = total) "E6 %s: baseline lost messages" name;
    let per x d = float_of_int x /. float_of_int (max 1 d) in
    let s_r = per r.stats.Sim.Engine.rounds delivered
    and b_r = per b.Baseline.Forwarding.rounds b_delivered
    and s_m = per r.stats.Sim.Engine.moves delivered
    and b_m = per b.Baseline.Forwarding.moves b_delivered in
    let ratio_r = s_r /. b_r and ratio_m = s_m /. b_m in
    (* "No significant over-cost" is asymptotic (both are Θ(D) amortized);
       the constant factor of the two-buffer handshake is ~2-7x. *)
    ck.expect (ratio_r <= 8.0)
      "E6 %s: rounds over-cost %.2f exceeds 8x" name ratio_r;
    ck.expect (ratio_m <= 8.0)
      "E6 %s: moves over-cost %.2f exceeds 8x" name ratio_m;
    Harness.Report.add_row table
      [
        name; string_of_int total; f2 s_r; f2 b_r; f2 ratio_r; f2 s_m; f2 b_m;
        f2 ratio_m;
      ]
  in
  case "ring8" (Topology.Builders.ring 8) 71;
  case "path8" (Topology.Builders.path 8) 72;
  case "star8" (Topology.Builders.star 8) 73;
  case "grid3x4" (Topology.Builders.grid ~rows:3 ~cols:4) 74;
  case "random12"
    (Topology.Builders.random_connected (rng_of 7) ~n:12 ~extra_edges:6)
    75;
  result table

(* ------------------------------------------------------------------ *)
(* E7 — snap-stabilization matrix + exhaustive model check             *)

let e7_snap_stabilization () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:[ "topology"; "corruption"; "daemons run"; "SP ok"; "note" ]
  in
  let fair_daemons =
    [
      Harness.Runner.Synchronous;
      Harness.Runner.Distributed_random;
      Harness.Runner.Round_robin;
      Harness.Runner.Central_random;
      Harness.Runner.Random_action;
    ]
  in
  let case name g spec_name spec seed =
    let n, _, _ = graph_info g in
    let ok_count = ref 0 in
    List.iteri
      (fun i daemon ->
        let wl =
          Harness.Workload.uniform_random
            (rng_of (seed + (100 * i)))
            ~n ~per_processor:2 ~distinct_payloads:false
        in
        let cfg = Harness.Runner.config ~spec ~daemon ~seed:(seed + i) g wl in
        let r = Harness.Runner.run cfg in
        if r.outcome = `Quiescent && r.verdict.Harness.Oracle.ok then
          incr ok_count
        else
          ck.expect false "E7 %s/%s/%s: %s" name spec_name
            (Harness.Runner.daemon_kind_to_string daemon)
            (String.concat "; " r.verdict.Harness.Oracle.violations))
      fair_daemons;
    Harness.Report.add_row table
      [
        name;
        spec_name;
        string_of_int (List.length fair_daemons);
        Printf.sprintf "%d/%d" !ok_count (List.length fair_daemons);
        (if !ok_count = List.length fair_daemons then "all exactly-once"
         else "VIOLATION");
      ]
  in
  let specs seed =
    [
      ("pristine", Harness.Fault.pristine, seed);
      ("random", Harness.Fault.random_spec (rng_of (seed + 7)), seed + 10);
      ("adversarial", Harness.Fault.adversarial, seed + 20);
    ]
  in
  List.iter
    (fun (name, g, seed) ->
      List.iter
        (fun (spec_name, spec, seed) -> case name g spec_name spec seed)
        (specs seed))
    [
      ("ring6", Topology.Builders.ring 6, 81);
      ("path5", Topology.Builders.path 5, 84);
      ("star6", Topology.Builders.star 6, 87);
      ("fig2net", Topology.Builders.paper_figure2, 90);
      ( "random10",
        Topology.Builders.random_connected (rng_of 8) ~n:10 ~extra_edges:5,
        93 );
    ];
  (* Exhaustive verification on the 2-processor chain. *)
  let sc = Mc.Explore.two_chain in
  let inits = Mc.Explore.enumerate_initials sc in
  let sr = Mc.Explore.check_safety sc inits in
  ck.expect (not sr.Mc.Explore.duplicate_delivery) "E7 mc: duplicate delivery";
  ck.expect (sr.Mc.Explore.lost_valid = None) "E7 mc: valid message lost";
  ck.expect (sr.Mc.Explore.deadlock = None) "E7 mc: deadlock";
  Harness.Report.add_row table
    [
      "2-chain (exhaustive)";
      Printf.sprintf "%d initials" sr.Mc.Explore.initial_count;
      Printf.sprintf "%d configs" sr.Mc.Explore.explored;
      (if
         (not sr.Mc.Explore.duplicate_delivery)
         && sr.Mc.Explore.lost_valid = None
         && sr.Mc.Explore.deadlock = None
       then "all"
       else "VIOLATION");
      "model-checked: no dup/loss/deadlock";
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E8 — ablations: why colors, R5 and queue rotation exist             *)

(* Deterministic R5 wedge: on the Figure 2 network, an invalid message in
   bufE_c(b) with its true copy at bufR_b(b) and a stray at bufR_a(b). R5
   erases the stray and unblocks R4; without R5 the component wedges and
   c's workload can never be generated. *)
let r5_wedge_states g workload =
  let b, c = (1, 2) in
  fun (states : Ssmfp.State.t array) ->
    let plant p which =
      let msg = Ssmfp.Message.fresh_invalid ~at:p ~last:c ~color:0 "inv" in
      let sl = Ssmfp.State.slot states.(p) 1 in
      states.(p) <-
        (match which with
        | `R -> Ssmfp.State.with_slot states.(p) 1 { sl with buf_r = Some msg }
        | `E -> Ssmfp.State.with_slot states.(p) 1 { sl with buf_e = Some msg })
    in
    ignore (g, workload);
    plant 0 `R;
    (* stray copy (inv, c, 0) in bufR_a(b) *)
    plant b `R;
    (* true copy (inv, c, 0) in bufR_b(b) *)
    plant c `E
(* source occurrence (inv, c, 0) in bufE_c(b) *)

let e8_ablations () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [ "variant"; "scenario"; "outcome"; "lost"; "dup"; "generated"; "wait max" ]
  in
  let row variant_name scenario r expected_bad =
    let lost = List.length (Harness.Oracle.lost_ghosts r.Harness.Runner.oracle) in
    let dup =
      List.length (Harness.Oracle.duplicated_ghosts r.Harness.Runner.oracle)
    in
    let gen = Harness.Oracle.valid_generated r.Harness.Runner.oracle in
    let waits = waiting_times r.Harness.Runner.oracle in
    let wait_max = Harness.Stats.maximum waits in
    let bad =
      lost > 0 || dup > 0
      || r.Harness.Runner.outcome = `Max_steps
      || not r.Harness.Runner.verdict.Harness.Oracle.ok
    in
    if expected_bad then
      ck.expect bad "E8 %s/%s: ablated variant unexpectedly satisfied SP"
        variant_name scenario
    else
      ck.expect (not bad) "E8 %s/%s: faithful variant violated SP (%s)"
        variant_name scenario
        (String.concat "; " r.Harness.Runner.verdict.Harness.Oracle.violations);
    Harness.Report.add_row table
      [
        variant_name;
        scenario;
        (match r.Harness.Runner.outcome with
        | `Quiescent -> "quiescent"
        | `Max_steps -> "wedged");
        string_of_int lost;
        string_of_int dup;
        string_of_int gen;
        (if Float.is_nan wait_max then "-" else f1 wait_max);
      ]
  in
  (* Colors: repeated identical payloads on a path; without colors, a new
     occurrence merges with the stale downstream copy of its predecessor. *)
  let color_case variant_name variant expected_bad =
    let g = Topology.Builders.path 3 in
    let wl = Harness.Workload.single ~n:3 ~src:0 ~dest:2 ~count:6 in
    wl.(0) <- List.map (fun (d, _) -> (d, "same")) wl.(0);
    let any_bad = ref false and last = ref None in
    List.iter
      (fun seed ->
        let cfg =
          Harness.Runner.config ~variant ~daemon:Harness.Runner.Random_action
            ~seed ~max_steps:60_000 g wl
        in
        let r = Harness.Runner.run cfg in
        last := Some r;
        if
          (not r.Harness.Runner.verdict.Harness.Oracle.ok)
          || r.Harness.Runner.outcome = `Max_steps
        then any_bad := true)
      [ 101; 102; 103; 104; 105; 106; 107; 108 ];
    (match !last with
    | Some r -> row variant_name "6x identical payload, path3" r expected_bad
    | None -> ());
    if expected_bad then
      ck.expect !any_bad
        "E8 %s: no violation in any seed (expected at least one)" variant_name
    else
      ck.expect (not !any_bad) "E8 %s: violation under faithful variant"
        variant_name
  in
  color_case "faithful" Ssmfp.Protocol.faithful false;
  color_case "no-colors"
    { Ssmfp.Protocol.faithful with use_colors = false }
    true;
  (* R5: the deterministic wedge above. *)
  let r5_case variant_name variant expected_bad =
    let g = Topology.Builders.paper_figure2 in
    let wl = Harness.Workload.single ~n:4 ~src:2 ~dest:1 ~count:3 in
    let cfg =
      Harness.Runner.config ~variant ~daemon:Harness.Runner.Round_robin
        ~seed:111 ~max_steps:40_000 ~prepare:(r5_wedge_states g wl) g wl
    in
    let r = Harness.Runner.run cfg in
    row variant_name "stray duplicate wedge, fig2 net" r expected_bad
  in
  r5_case "faithful" Ssmfp.Protocol.faithful false;
  r5_case "no-R5" { Ssmfp.Protocol.faithful with use_r5 = false } true;
  (* The paper-literal R5 (no q <> p restriction): generating a message
     visibly identical to an invalid occupant of bufE erases it. *)
  let literal_case variant_name variant expected_bad =
    let g = Topology.Builders.path 2 in
    let wl = Harness.Workload.single ~n:2 ~src:0 ~dest:1 ~count:1 in
    wl.(0) <- [ (1, "v") ];
    let prepare states =
      let plant p d which msg =
        let sl = Ssmfp.State.slot states.(p) d in
        states.(p) <-
          (match which with
          | `R ->
              Ssmfp.State.with_slot states.(p) d
                { sl with Ssmfp.State.buf_r = Some msg }
          | `E ->
              Ssmfp.State.with_slot states.(p) d
                { sl with Ssmfp.State.buf_e = Some msg })
      in
      plant 0 1 `E (Ssmfp.Message.fresh_invalid ~at:0 ~last:0 ~color:0 "v");
      plant 1 1 `R (Ssmfp.Message.fresh_invalid ~at:1 ~last:0 ~color:1 "v")
    in
    let cfg =
      Harness.Runner.config ~variant ~daemon:Harness.Runner.Round_robin
        ~seed:161 ~prepare g wl
    in
    let r = Harness.Runner.run cfg in
    row variant_name "identical invalid in bufE, path2" r expected_bad
  in
  literal_case "faithful" Ssmfp.Protocol.faithful false;
  literal_case "literal-R5"
    { Ssmfp.Protocol.faithful with literal_r5 = true }
    true;
  (* Queue rotation: convergecast contention on a star. *)
  let rotation_case variant_name variant =
    let g = Topology.Builders.star 6 in
    let wl = Harness.Workload.all_to_one ~n:6 ~dest:0 ~per_processor:10 () in
    let cfg =
      Harness.Runner.config ~variant ~daemon:Harness.Runner.Synchronous
        ~seed:121 g wl
    in
    let r = Harness.Runner.run cfg in
    row variant_name "all-to-one star6" r false;
    Harness.Stats.maximum (waiting_times r.Harness.Runner.oracle)
  in
  let fair_wait = rotation_case "faithful" Ssmfp.Protocol.faithful in
  let unfair_wait =
    rotation_case "no-rotation"
      { Ssmfp.Protocol.faithful with rotate_queue = false }
  in
  ck.expect
    (Float.is_nan fair_wait || Float.is_nan unfair_wait
    || fair_wait <= unfair_wait)
    "E8 rotation: fair queue waited longer (%.0f) than unfair (%.0f)"
    fair_wait unfair_wait;
  result table

(* ------------------------------------------------------------------ *)
(* E9 — the message-passing port                                       *)

let e9_message_passing () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "corruption"; "garbage"; "outcome"; "deliveries";
          "pulses"; "SP ok";
        ]
  in
  let case ?(loss = 0.) name g spec_name spec garbage seed =
    let n, _, _ = graph_info g in
    let wl =
      Harness.Workload.uniform_random (rng_of (seed + 5000)) ~n ~per_processor:2
    in
    let t =
      Mp.Ssmfp_mp.create ~spec ~channel_garbage:garbage ~loss ~seed g wl
    in
    let r = Mp.Ssmfp_mp.run t in
    ck.expect
      (r.Mp.Ssmfp_mp.outcome = `All_done
      && r.Mp.Ssmfp_mp.verdict.Harness.Oracle.ok)
      "E9 %s/%s/g%d: %s" name spec_name garbage
      (String.concat "; " r.Mp.Ssmfp_mp.verdict.Harness.Oracle.violations);
    Harness.Report.add_row table
      [
        name;
        (if loss > 0. then Printf.sprintf "%s, %.0f%% loss" spec_name (100. *. loss)
         else spec_name);
        string_of_int garbage;
        (match r.Mp.Ssmfp_mp.outcome with
        | `All_done -> "drained"
        | `Max_deliveries -> "BUDGET");
        string_of_int r.Mp.Ssmfp_mp.channel_deliveries;
        string_of_int r.Mp.Ssmfp_mp.max_pulse;
        (if r.Mp.Ssmfp_mp.verdict.Harness.Oracle.ok then "yes" else "NO");
      ]
  in
  List.iter
    (fun (name, g, seed) ->
      case name g "pristine" Harness.Fault.pristine 0 seed;
      case name g "adversarial" Harness.Fault.adversarial 0 (seed + 1);
      case name g "adversarial" Harness.Fault.adversarial 30 (seed + 2);
      case ~loss:0.2 name g "adversarial" Harness.Fault.adversarial 10 (seed + 3))
    [
      ("ring6", Topology.Builders.ring 6, 131);
      ("fig2net", Topology.Builders.paper_figure2, 134);
      ( "random8",
        Topology.Builders.random_connected (rng_of 9) ~n:8 ~extra_edges:4,
        137 );
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E10 — buffer economics across deadlock-free schemes                 *)

let e10_buffer_economics () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "n"; "D"; "dest-based buf/proc"; "ssmfp buf/proc";
          "hop buf/proc"; "hop delivered"; "hop dropped";
        ]
  in
  let case name g seed =
    let n, _, diam = graph_info g in
    let wl =
      Harness.Workload.uniform_random (rng_of (seed + 6000)) ~n ~per_processor:2
    in
    let t = Baseline.Hop_scheme.create g in
    Array.iteri
      (fun src msgs ->
        List.iter
          (fun (dest, info) -> Baseline.Hop_scheme.send t ~src ~dest info)
          msgs)
      wl;
    (match Baseline.Hop_scheme.run_to_quiescence t with
    | `Quiescent -> ()
    | `Max_rounds -> ck.expect false "E10 %s: hop scheme did not quiesce" name);
    let st = Baseline.Hop_scheme.stats t in
    let delivered = List.length st.Baseline.Hop_scheme.delivered in
    ck.expect (delivered = Harness.Workload.total wl)
      "E10 %s: hop scheme delivered %d of %d" name delivered
      (Harness.Workload.total wl);
    ck.expect (st.Baseline.Hop_scheme.dropped = 0)
      "E10 %s: hop scheme dropped %d under correct tables" name
      st.Baseline.Hop_scheme.dropped;
    ck.expect
      (Baseline.Hop_scheme.buffers_per_processor t = diam + 1)
      "E10 %s: expected D+1 buffer classes" name;
    Harness.Report.add_row table
      [
        name;
        string_of_int n;
        string_of_int diam;
        string_of_int n;
        string_of_int (2 * n);
        string_of_int (diam + 1);
        string_of_int delivered;
        string_of_int st.Baseline.Hop_scheme.dropped;
      ]
  in
  case "ring8" (Topology.Builders.ring 8) 141;
  case "ring16" (Topology.Builders.ring 16) 142;
  case "path10" (Topology.Builders.path 10) 143;
  case "star10" (Topology.Builders.star 10) 144;
  case "grid4x4" (Topology.Builders.grid ~rows:4 ~cols:4) 145;
  case "hypercube4" (Topology.Builders.hypercube 4) 146;
  (* Corrupted tables break the hop scheme's acyclicity argument: the
     drop counter exposes the loss a snap-stabilizing protocol forbids. *)
  let g = Topology.Builders.ring 8 in
  let t = Baseline.Hop_scheme.create ~tables:(Routing.Table.worst_all g) g in
  for src = 0 to 7 do
    Baseline.Hop_scheme.send t ~src ~dest:((src + 3) mod 8) "x"
  done;
  ignore (Baseline.Hop_scheme.run_to_quiescence t);
  let st = Baseline.Hop_scheme.stats t in
  ck.expect (st.Baseline.Hop_scheme.dropped > 0)
    "E10: corrupted tables should make the hop scheme drop messages";
  Harness.Report.add_row table
    [
      "ring8 (worst tables)"; "8"; "4"; "-"; "-"; "5";
      string_of_int (List.length st.Baseline.Hop_scheme.delivered);
      string_of_int st.Baseline.Hop_scheme.dropped;
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E11 — daemon sensitivity                                            *)

let e11_daemon_sensitivity () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [ "daemon"; "steps"; "rounds"; "moves"; "lat mean"; "lat max"; "SP" ]
  in
  let g = Topology.Builders.ring 8 in
  let run daemon seed =
    let wl =
      Harness.Workload.uniform_random (rng_of 7000) ~n:8 ~per_processor:2
    in
    let cfg =
      Harness.Runner.config ~spec:Harness.Fault.adversarial ~daemon ~seed g wl
    in
    let r = Harness.Runner.run cfg in
    let lat = Harness.Stats.summarize (Harness.Oracle.latencies r.oracle) in
    ck.expect (r.outcome = `Quiescent && r.verdict.Harness.Oracle.ok)
      "E11 %s: SP violated"
      (Harness.Runner.daemon_kind_to_string daemon);
    Harness.Report.add_row table
      [
        Harness.Runner.daemon_kind_to_string daemon;
        string_of_int r.stats.Sim.Engine.steps;
        string_of_int r.stats.Sim.Engine.rounds;
        string_of_int r.stats.Sim.Engine.moves;
        f1 lat.Harness.Stats.mean;
        f1 lat.Harness.Stats.max;
        (if r.verdict.Harness.Oracle.ok then "ok" else "NO");
      ]
  in
  List.iteri
    (fun i daemon -> run daemon (151 + i))
    [
      Harness.Runner.Synchronous;
      Harness.Runner.Distributed_random;
      Harness.Runner.Central_random;
      Harness.Runner.Round_robin;
      Harness.Runner.Random_action;
    ];
  result table

(* ------------------------------------------------------------------ *)
(* E12 — the fairness lemma behind Propositions 5 and 6: a waiting      *)
(* feeder is passed at most Δ times before choice_p(d) serves it        *)

let e12_choice_fairness () =
  let ck, result = checker () in
  let table =
    Harness.Report.table
      ~headers:
        [
          "topology"; "Δ"; "served events"; "passes mean"; "passes max";
          "bound Δ"; "within";
        ]
  in
  let case name g seed =
    let n = Topology.Graph.n g in
    let delta = Topology.Graph.max_degree g in
    let rng = rng_of (seed + 8000) in
    let wl =
      Harness.Workload.all_to_one ~n ~dest:0 ~per_processor:6 ()
    in
    ignore rng;
    let proto = Ssmfp.Protocol.make g in
    let fault_rng = rng_of (seed + 8001) in
    let t =
      Sim.Engine.make ~graph:g ~protocol:proto (fun p ->
          Harness.Fault.initial_states ~rng:fault_rng Harness.Fault.pristine g
            ~workload:wl p)
    in
    let daemon = Sim.Daemon.synchronous () in
    (* passes.(gid) = times this ghost's emission buffer was an unserved
       candidate while its target reception buffer got filled by another
       feeder; recorded and reset when the ghost is finally served. *)
    let passes : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let recorded = ref [] in
    let bump gid = 
      Hashtbl.replace passes gid
        (1 + Option.value ~default:0 (Hashtbl.find_opt passes gid))
    in
    let serve gid =
      recorded := float_of_int (Option.value ~default:0 (Hashtbl.find_opt passes gid)) :: !recorded;
      Hashtbl.remove passes gid
    in
    let feeders_of p d ~except =
      let net = Sim.Engine.net t in
      List.filter_map
        (fun q ->
          if q = except then None
          else
            match (Ssmfp.State.slot net.Sim.Engine.states.(q) d).Ssmfp.State.buf_e with
            | Some m
              when Routing.Selfstab.next_hop
                     net.Sim.Engine.states.(q).Ssmfp.State.routing ~d
                   = p ->
                Some m.Ssmfp.Message.ghost.Ssmfp.Message.gid
            | _ -> None)
        (Topology.Graph.neighbors g p)
    in
    let on_events ~step:_ events =
      List.iter
        (fun (pid, ev) ->
          match ev with
          | Ssmfp.Protocol.Copied (m, s, d) ->
              (* the served feeder's ghost is the copied message's ghost *)
              serve m.Ssmfp.Message.ghost.Ssmfp.Message.gid;
              List.iter bump (feeders_of pid d ~except:s)
          | Ssmfp.Protocol.Generated (m, d) ->
              serve m.Ssmfp.Message.ghost.Ssmfp.Message.gid;
              List.iter bump (feeders_of pid d ~except:pid)
          | _ -> ())
        events
    in
    let raise_requests t =
      Topology.Graph.iter_vertices
        (fun p ->
          let st = Sim.Engine.state t p in
          if (not st.Ssmfp.State.request) && st.Ssmfp.State.outbox <> [] then
            Sim.Engine.set_state t p { st with Ssmfp.State.request = true })
        g
    in
    let status =
      Sim.Engine.run ~max_steps:500_000 ~before_step:raise_requests ~on_events
        t daemon
    in
    ck.expect (status = `Terminal) "E12 %s: did not drain" name;
    let s = Harness.Stats.summarize !recorded in
    ck.expect
      (s.Harness.Stats.max <= float_of_int delta)
      "E12 %s: a feeder was passed %.0f times (> Δ = %d)" name
      s.Harness.Stats.max delta;
    Harness.Report.add_row table
      [
        name;
        string_of_int delta;
        string_of_int s.Harness.Stats.count;
        f2 s.Harness.Stats.mean;
        f1 s.Harness.Stats.max;
        string_of_int delta;
        (if s.Harness.Stats.max <= float_of_int delta then "yes" else "NO");
      ]
  in
  case "star6" (Topology.Builders.star 6) 171;
  case "star10" (Topology.Builders.star 10) 172;
  case "complete6" (Topology.Builders.complete 6) 173;
  case "grid3x3" (Topology.Builders.grid ~rows:3 ~cols:3) 174;
  case "ring8" (Topology.Builders.ring 8) 175;
  result table

let suite () =
  [
    ("E1 (Prop 4: invalid deliveries <= 2n)", e1_invalid_deliveries);
    ("E2 (Prop 5: worst-case latency)", e2_worst_case_latency);
    ("E3 (Prop 6: delay & waiting time)", e3_delay_and_waiting);
    ("E4 (Prop 7: amortized rounds/delivery)", e4_amortized);
    ("E5 (substrate: measured R_A)", e5_routing_stabilization);
    ("E6 (over-cost vs fault-free baseline)", e6_overhead_vs_baseline);
    ("E7 (snap-stabilization matrix + model check)", e7_snap_stabilization);
    ("E8 (ablations)", e8_ablations);
    ("E9 (message-passing port)", e9_message_passing);
    ("E10 (buffer economics of deadlock-free schemes)", e10_buffer_economics);
    ("E11 (daemon sensitivity)", e11_daemon_sensitivity);
    ("E12 (choice fairness: passes per hop <= \xce\x94)", e12_choice_fairness);
  ]

let all () = List.map (fun (name, f) -> (name, f ())) (suite ())
