(** The experiment tables of EXPERIMENTS.md (one per proposition/claim of
    the paper; the paper itself has no measured tables, so these are the
    quantitative artifacts its proofs predict — see DESIGN.md §4).

    Every function is deterministic (seeded), prints nothing, and returns
    the populated table plus a machine-checkable verdict so the test suite
    can assert the *shape* the paper predicts. [bench/main.exe] renders
    them. *)

type outcome = {
  table : Harness.Report.table;
  ok : bool;  (** the paper-predicted shape holds *)
  notes : string list;  (** one line per violated expectation, empty iff ok *)
}

val e1_invalid_deliveries : unit -> outcome
(** Proposition 4: with all [2n] buffers of destination [d]'s component
    pre-filled with distinct invalid messages, at most [2n] invalid
    messages are delivered to [d]. Sweeps rings and random graphs. *)

val e2_worst_case_latency : unit -> outcome
(** Proposition 5: delivery latency in rounds of messages under saturating
    cross-traffic stays within the [O(max(R_A, Δ^D))] envelope; sweeps
    paths, rings, stars and trees, with correct and corrupted tables. *)

val e3_delay_and_waiting : unit -> outcome
(** Proposition 6: delay before first emission and waiting time between
    emissions, measured per processor under saturation. *)

val e4_amortized : unit -> outcome
(** Proposition 7: amortized rounds per delivered message is [O(D)] (the
    proof's constant is 3D once tables are correct), far below the [Δ^D]
    worst case. Sweeps the diameter via paths and rings. *)

val e5_routing_stabilization : unit -> outcome
(** Substrate: measured [R_A] (rounds for [A] to reach silence from
    corrupted tables) against the diameter, per topology and daemon. *)

val e6_overhead_vs_baseline : unit -> outcome
(** "No significant over-cost": SSMFP with correct tables vs the
    fault-free Merlin–Schweitzer baseline on the same workload — rounds
    and moves per delivered message, and their ratios. *)

val e7_snap_stabilization : unit -> outcome
(** Specification SP from arbitrary configurations: topology × daemon ×
    corruption matrix, all runs must deliver every valid message exactly
    once; plus the exhaustive 2-chain model-check counts. *)

val e8_ablations : unit -> outcome
(** Why each mechanism exists: disabling colors loses messages, disabling
    R5 wedges the pipeline, disabling queue rotation starves processors.
    The faithful variant passes where each ablation fails. *)

val e9_message_passing : unit -> outcome
(** The §4 port: SP verdicts of the message-passing SSMFP under corrupted
    processes and channel garbage. *)

val e10_buffer_economics : unit -> outcome
(** Buffer requirements of the deadlock-free schemes the paper discusses
    (destination-based n, SSMFP 2n, hop-count D+1 buffers per processor),
    with the hop scheme's correctness under correct tables and its
    message-dropping failure under corrupted ones — the trade-off behind
    the paper's open problem on minimal buffer counts. *)

val e11_daemon_sensitivity : unit -> outcome
(** The same adversarial recovery under every fair daemon: steps, rounds,
    moves and latency; SP must hold under each. *)

val e12_choice_fairness : unit -> outcome
(** The fairness mechanism behind Propositions 5 and 6: under convergecast
    contention, a feeder waiting on [choice_p(d)] is passed at most [Δ]
    times before being served (the rotating queue's guarantee; the [Δ^D]
    worst case compounds exactly this per-hop bound). *)

val suite : unit -> (string * (unit -> outcome)) list
(** Every experiment, keyed by its display name, *unevaluated* — so
    callers (the bench) can time and report each one individually. *)

val all : unit -> (string * outcome) list
(** Every table, keyed by experiment id, in order ({!suite}, forced). *)
