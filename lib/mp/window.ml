(* Sliding-window retransmission over one directed channel, in the
   data-link style of SNIPPETS Snippet 2: sequence-numbered Data frames,
   cumulative acks, a nak for the first gap (selective retransmit), and
   a sender-side retransmission timer driven by the network's timer
   wheel (the caller arms/fires it; this module is pure state machine).

   Epochs make the pair self-stabilizing under crash-recovery and
   channel garbage: a receiver adopts *any* epoch different from its
   current one (resetting its window), so finite stray frames — garbage,
   or leftovers of a previous incarnation — perturb it only finitely
   often; a sender ignores acks from foreign epochs, and when a valid
   ack proves the receiver is behind the send base (the receiver lost
   its state), the sender resyncs: it bumps its epoch and renumbers the
   still-unacked frames from zero. Payloads already acked before a
   receiver crash are not replayed — the synchronizer above tolerates
   this because snapshots are full-state and periodically refreshed. *)

type 'a frame =
  | Data of { epoch : int; seq : int; body : 'a }
  | Ack of { epoch : int; cum : int; nak : int } (* nak = -1: no gap *)

type 'a sender = {
  w : int;
  mutable s_epoch : int;
  mutable base : int; (* lowest unacked seq *)
  mutable next : int; (* next seq to assign; in-flight = [base, next) *)
  mutable buf : 'a option array; (* slot [seq mod w] *)
  pending : 'a Ring.t; (* overflow beyond the window, FIFO *)
  mutable retransmits : int;
}

type 'a receiver = {
  rw : int;
  mutable r_epoch : int;
  mutable expected : int; (* next in-order seq to deliver *)
  mutable rbuf : 'a option array; (* out-of-order slots [seq mod w] *)
}

let sender ?(epoch = 0) w =
  if w < 1 then invalid_arg "Window.sender: window must be >= 1";
  {
    w;
    s_epoch = epoch;
    base = 0;
    next = 0;
    buf = Array.make w None;
    pending = Ring.create ();
    retransmits = 0;
  }

let receiver ?(epoch = 0) w =
  if w < 1 then invalid_arg "Window.receiver: window must be >= 1";
  { rw = w; r_epoch = epoch; expected = 0; rbuf = Array.make w None }

let sender_epoch s = s.s_epoch
let in_flight s = s.next - s.base
let backlog s = Ring.length s.pending
let busy s = s.next > s.base || not (Ring.is_empty s.pending)
let retransmits s = s.retransmits
let receiver_epoch r = r.r_epoch
let expected r = r.expected

let frame_at s seq =
  match s.buf.(seq mod s.w) with
  | Some body -> Data { epoch = s.s_epoch; seq; body }
  | None -> invalid_arg "Window: no frame at seq"

(* Assign sequence numbers to as much of [pending] as fits, emitting the
   fresh Data frames. *)
let fill s acc =
  let out = ref acc in
  while s.next - s.base < s.w && not (Ring.is_empty s.pending) do
    let body = Ring.pop s.pending in
    s.buf.(s.next mod s.w) <- Some body;
    out := Data { epoch = s.s_epoch; seq = s.next; body } :: !out;
    s.next <- s.next + 1
  done;
  List.rev !out

let send s body =
  if s.next - s.base < s.w then begin
    s.buf.(s.next mod s.w) <- Some body;
    let fr = Data { epoch = s.s_epoch; seq = s.next; body } in
    s.next <- s.next + 1;
    [ fr ]
  end
  else begin
    Ring.push s.pending body;
    []
  end

(* Full-state payloads: a queued payload that has not yet been assigned
   a sequence number is superseded by any newer one, so replace the
   backlog instead of appending. This bounds the channel's lag at [w]
   frames in flight plus one pending payload no matter how fast the
   caller publishes — without it a sender publishing faster than the
   channel round-trips grows the backlog without bound and its peer
   only ever sees stale state. *)
let send_latest s body =
  Ring.clear s.pending;
  send s body

(* Receiver state loss detected (valid-epoch ack behind our base): bump
   the epoch and renumber the unacked window from zero — at most [w]
   frames, all retransmitted under the new epoch. *)
let resync s =
  let inflight = ref [] in
  for seq = s.next - 1 downto s.base do
    inflight := s.buf.(seq mod s.w) :: !inflight
  done;
  s.s_epoch <- s.s_epoch + 1;
  s.base <- 0;
  s.next <- 0;
  Array.fill s.buf 0 s.w None;
  List.fold_left
    (fun acc body ->
      match body with
      | None -> acc
      | Some body ->
          s.buf.(s.next mod s.w) <- Some body;
          let fr = Data { epoch = s.s_epoch; seq = s.next; body } in
          s.next <- s.next + 1;
          s.retransmits <- s.retransmits + 1;
          fr :: acc)
    [] !inflight
  |> List.rev

let on_ack s ~epoch ~cum ~nak =
  if epoch <> s.s_epoch then []
  else if cum + 1 < s.base then resync s
  else begin
    (* Cumulative ack: release [base .. cum]. *)
    let upto = min cum (s.next - 1) in
    while s.base <= upto do
      s.buf.(s.base mod s.w) <- None;
      s.base <- s.base + 1
    done;
    let fresh = fill s [] in
    (* Selective retransmit of the reported gap, if still unacked. *)
    if nak >= s.base && nak < s.next then begin
      s.retransmits <- s.retransmits + 1;
      fresh @ [ frame_at s nak ]
    end
    else fresh
  end

(* Retransmission timeout: resend the base frame — the cumulative-ack
   repair; one frame per fire keeps timer chatter bounded. *)
let on_rto s =
  if s.next > s.base then begin
    s.retransmits <- s.retransmits + 1;
    [ frame_at s s.base ]
  end
  else []

let reset_sender s =
  s.s_epoch <- s.s_epoch + 1;
  s.base <- 0;
  s.next <- 0;
  Array.fill s.buf 0 s.w None;
  Ring.clear s.pending

let reset_receiver r =
  (* A recovered receiver must not resume its old epoch (the sender
     would keep old seq numbering against an emptied window): moving to
     a fresh epoch forces adoption on the next Data frame. *)
  r.r_epoch <- r.r_epoch + 1;
  r.expected <- 0;
  Array.fill r.rbuf 0 r.rw None

let on_data r ~epoch ~seq body =
  if epoch <> r.r_epoch then begin
    (* Adopt any foreign epoch: reset the window to it. Stray frames of
       dead epochs are finite, so flapping is finite; the live sender's
       epoch wins in the end. *)
    r.r_epoch <- epoch;
    r.expected <- 0;
    Array.fill r.rbuf 0 r.rw None
  end;
  if seq < r.expected then
    (* Duplicate of something already delivered: re-ack so a lost ack
       cannot wedge the sender. *)
    ([], Ack { epoch = r.r_epoch; cum = r.expected - 1; nak = -1 })
  else if seq >= r.expected + r.rw then
    (* Beyond the window (receiver reset, or garbage): drop and point
       the sender at what we actually need. *)
    ([], Ack { epoch = r.r_epoch; cum = r.expected - 1; nak = r.expected })
  else begin
    r.rbuf.(seq mod r.rw) <- Some body;
    (* Drain the in-order prefix. *)
    let delivered = ref [] in
    let continue = ref true in
    while !continue do
      match r.rbuf.(r.expected mod r.rw) with
      | Some b ->
          r.rbuf.(r.expected mod r.rw) <- None;
          delivered := b :: !delivered;
          r.expected <- r.expected + 1
      | None -> continue := false
    done;
    (* Report the first gap (if any frame is buffered past it). *)
    let buffered_ahead = Array.exists Option.is_some r.rbuf in
    let nak = if buffered_ahead then r.expected else -1 in
    (List.rev !delivered, Ack { epoch = r.r_epoch; cum = r.expected - 1; nak })
  end
