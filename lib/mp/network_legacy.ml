type ('s, 'm) handler = self:int -> from:int -> 's -> 'm -> 's * (int * 'm) list

(* Channel items: application payloads (with their stamp id) share the
   FIFO queues with snapshot markers — the Chandy–Lamport layer rides
   *under* the application protocol, so markers suffer the same loss,
   duplication, reordering and crash-evaporation as everything else.
   A network without an attached snapshot layer never enqueues markers
   and behaves byte-for-byte as before. *)
type 'm item = App of 'm * int | Marker of int (* snapshot epoch *)

(* Profiling state: Lamport stamps and hop logging.

   Every handler- or timeout-originated send is stamped with a fresh
   message id and the sender's incremented Lamport clock; the stamp
   travels with the message through loss, duplication and reordering (a
   duplicate carries the same id — seeing an id delivered twice IS the
   duplication). Stamps live in a ring keyed by [id land s_mask] with
   the id stored for overwrite detection, so a long-delayed message
   whose slot was reused simply loses its latency sample instead of
   producing a bogus one. Deliveries advance the receiver's Lamport
   clock to [max (own + 1) (send + 1)] and append a hop record — the
   causal trace that works under loss/reorder because it is built only
   from sends and deliveries that actually happened, unlike the
   omniscient ghost-based Obs.Hoptrace. *)
type prof_state = {
  prof : Obs.Prof.t;
  ptr : Obs.Prof.track; (* the scheduler domain's track *)
  h_latency : Obs.Prof.histo; (* mp.send_deliver_ns *)
  h_depth : Obs.Prof.histo; (* mp.in_flight, sampled every 64 steps *)
  h_chan : Obs.Prof.histo; (* mp.channel_depth, nonempty channels only *)
  c_stamped : Obs.Prof.counter; (* mp.sends *)
  lamport : int array;
  s_mask : int;
  s_id : int array;
  s_send_ns : int array;
  s_lamport : int array;
  s_from : int array;
  mutable next_stamp : int;
  hop_mask : int;
  hop_id : int array;
  hop_from : int array;
  hop_into : int array;
  hop_send_l : int array;
  hop_recv_l : int array;
  hop_lat : int array;
  mutable hop_next : int;
  mutable hop_total : int;
  mutable steps : int;
}

type hop = {
  hop_id : int;
  hop_from : int;
  hop_into : int;
  hop_send_lamport : int;
  hop_recv_lamport : int;
  hop_latency_ns : int;
}

type ('s, 'm) t = {
  graph : Topology.Graph.t;
  states : 's array;
  (* (from, into) -> FIFO of items; app stamps: -1 = untracked *)
  channels : (int * int, 'm item Queue.t) Hashtbl.t;
  (* O(log E) channel scheduler. The step scheduler must draw a uniform
     channel among the nonempty ones, in the canonical sorted (from,
     into) order — the draw that used to be [choose rng (sort
     (nonempty_channels t))], an O(E log E) fold-and-sort per step. The
     same distribution (and the very same PRNG stream: one [int] draw
     bounded by the nonempty count) comes from a Fenwick tree over the
     channels in sorted order, flag 1 = nonempty, maintained at every
     queue push/pop transition. *)
  sched_keys : (int * int) array; (* every directed channel, sorted *)
  sched_queues : 'm item Queue.t array; (* parallel to [sched_keys] *)
  sched_ix : (int * int, int) Hashtbl.t; (* key -> index in the above *)
  sched_flag : bool array; (* current nonempty flag per channel *)
  sched_fen : int array; (* 1-based Fenwick over the flags *)
  mutable sched_nonempty : int;
  handler : ('s, 'm) handler;
  loss : float;
  duplication : float;
  reorder : float;
  timeout : (self:int -> 's -> 's * (int * 'm) list) option;
  on_recover : (self:int -> 's -> 's) option;
  down : int array; (* remaining down step-calls per process; 0 = up *)
  np : prof_state option;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable dropped_down : int;
  (* Snapshot-layer hooks; both stay [None] in snapshot-free networks. *)
  mutable marker_handler : (self:int -> from:int -> epoch:int -> unit) option;
  mutable delivery_tap : (self:int -> from:int -> 'm -> unit) option;
  mutable markers_sent : int;
  mutable markers_delivered : int;
  mutable markers_dropped : int; (* lost, or evaporated at a crashed process *)
}

let channel t ~from ~into =
  if not (Topology.Graph.is_edge t.graph from into) then
    invalid_arg "Network: not an edge";
  (* Every channel is materialized at creation. *)
  Hashtbl.find t.channels (from, into)

(* Fenwick primitives over the nonempty flags (1-based internally). *)
let fen_add t i delta =
  let n = Array.length t.sched_keys in
  let i = ref (i + 1) in
  while !i <= n do
    t.sched_fen.(!i) <- t.sched_fen.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Index of the (k+1)-th nonempty channel in canonical order, 0-based:
   the classic Fenwick select by descending powers of two. *)
let fen_select t k =
  let n = Array.length t.sched_keys in
  let pw = ref 1 in
  while !pw * 2 <= n do
    pw := !pw * 2
  done;
  let pos = ref 0 and rem = ref k in
  while !pw > 0 do
    let np = !pos + !pw in
    if np <= n && t.sched_fen.(np) <= !rem then begin
      pos := np;
      rem := !rem - t.sched_fen.(np)
    end;
    pw := !pw lsr 1
  done;
  !pos

(* Flag transitions: [note_filled] after any push (idempotent),
   [note_popped] after any pop. *)
let note_filled t key =
  let i = Hashtbl.find t.sched_ix key in
  if not t.sched_flag.(i) then begin
    t.sched_flag.(i) <- true;
    t.sched_nonempty <- t.sched_nonempty + 1;
    fen_add t i 1
  end

let note_popped t i q =
  if Queue.is_empty q then begin
    t.sched_flag.(i) <- false;
    t.sched_nonempty <- t.sched_nonempty - 1;
    fen_add t i (-1)
  end

let make_prof_state prof n =
  if not (Obs.Prof.enabled prof) then None
  else begin
    let s_cap = 1 lsl 15 and hop_cap = 1 lsl 14 in
    Some
      {
        prof;
        ptr = Obs.Prof.track prof 0;
        h_latency = Obs.Prof.histo prof "mp.send_deliver_ns";
        h_depth = Obs.Prof.histo prof "mp.in_flight";
        h_chan = Obs.Prof.histo prof "mp.channel_depth";
        c_stamped = Obs.Prof.counter prof "mp.sends";
        lamport = Array.make n 0;
        s_mask = s_cap - 1;
        s_id = Array.make s_cap (-1);
        s_send_ns = Array.make s_cap 0;
        s_lamport = Array.make s_cap 0;
        s_from = Array.make s_cap 0;
        next_stamp = 0;
        hop_mask = hop_cap - 1;
        hop_id = Array.make hop_cap 0;
        hop_from = Array.make hop_cap 0;
        hop_into = Array.make hop_cap 0;
        hop_send_l = Array.make hop_cap 0;
        hop_recv_l = Array.make hop_cap 0;
        hop_lat = Array.make hop_cap 0;
        hop_next = 0;
        hop_total = 0;
        steps = 0;
      }
  end

let create ?(loss = 0.) ?(duplication = 0.) ?(reorder = 0.)
    ?(prof = Obs.Prof.disabled) ?timeout ?on_recover ~init ~handler graph =
  (* Materialize every channel up front so the scheduler can index them. *)
  let channels = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace channels (u, v) (Queue.create ());
      Hashtbl.replace channels (v, u) (Queue.create ()))
    (Topology.Graph.edges graph);
  let sched_keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) channels []
    |> List.sort compare |> Array.of_list
  in
  let sched_queues = Array.map (Hashtbl.find channels) sched_keys in
  let sched_ix = Hashtbl.create (2 * Array.length sched_keys) in
  Array.iteri (fun i k -> Hashtbl.replace sched_ix k i) sched_keys;
  let t =
    {
      graph;
      states = Array.init (Topology.Graph.n graph) init;
      channels;
      sched_keys;
      sched_queues;
      sched_ix;
      sched_flag = Array.make (Array.length sched_keys) false;
      sched_fen = Array.make (Array.length sched_keys + 1) 0;
      sched_nonempty = 0;
      handler;
      loss;
      duplication;
      reorder;
      timeout;
      on_recover;
      down = Array.make (Topology.Graph.n graph) 0;
      np = make_prof_state prof (Topology.Graph.n graph);
      delivered = 0;
      dropped = 0;
      duplicated = 0;
      reordered = 0;
      dropped_down = 0;
      marker_handler = None;
      delivery_tap = None;
      markers_sent = 0;
      markers_delivered = 0;
      markers_dropped = 0;
    }
  in
  t

(* One stamp per logical send: duplicated copies and broadcast fan-out
   share the id (seeing one id delivered twice IS the duplication; once
   per neighbor, the broadcast). Stamping never touches the scheduler's
   PRNG, so draw sequences are identical with profiling on or off. *)
let stamp t ~from =
  match t.np with
  | None -> -1
  | Some p ->
      p.lamport.(from) <- p.lamport.(from) + 1;
      let sid = p.next_stamp in
      p.next_stamp <- sid + 1;
      let slot = sid land p.s_mask in
      p.s_id.(slot) <- sid;
      p.s_send_ns.(slot) <- Obs.Prof.now p.prof;
      p.s_lamport.(slot) <- p.lamport.(from);
      p.s_from.(slot) <- from;
      Obs.Prof.add p.ptr p.c_stamped 1;
      sid

(* Injected messages are unstamped (-1): garbage in flight has no send
   event, so it can have no latency or causal past. *)
let inject t ~from ~into m =
  Queue.add (App (m, -1)) (channel t ~from ~into);
  note_filled t (from, into)

let send_all t ~from m =
  let sid = stamp t ~from in
  List.iter
    (fun q ->
      Queue.add (App (m, sid)) (channel t ~from ~into:q);
      note_filled t (from, q))
    (Topology.Graph.neighbors t.graph from)

let state t p = t.states.(p)
let set_state t p s = t.states.(p) <- s

let in_flight t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.channels 0

let deliveries t = t.delivered
let dropped t = t.dropped
let duplicated t = t.duplicated
let reordered t = t.reordered
let dropped_while_down t = t.dropped_down
let markers_sent t = t.markers_sent
let markers_delivered t = t.markers_delivered
let markers_dropped t = t.markers_dropped

let on_marker t f = t.marker_handler <- Some f
let on_deliver t f = t.delivery_tap <- Some f

let channel_contents t ~from ~into =
  List.filter_map
    (function App (m, _) -> Some m | Marker _ -> None)
    (List.of_seq (Queue.to_seq (channel t ~from ~into)))

let crash t p ~down_for =
  if down_for < 1 then invalid_arg "Network.crash: down_for must be >= 1";
  if p < 0 || p >= Array.length t.down then invalid_arg "Network.crash: no such process";
  t.down.(p) <- max t.down.(p) down_for

let is_down t p = t.down.(p) > 0

(* Adversarial FIFO violation: the new message overtakes at least one
   already-queued one. Drawn only when the knob is on and there is
   something to overtake, so the draw sequence of reorder-free networks
   is untouched. *)
let enqueue t rng ((from, into) as key) m =
  let q = channel t ~from ~into in
  (if
     t.reorder > 0.
     && (not (Queue.is_empty q))
     && Prng.Splitmix.bernoulli rng t.reorder
   then begin
     let items = List.of_seq (Queue.to_seq q) in
     let pos = Prng.Splitmix.int rng (List.length items) in
     Queue.clear q;
     List.iteri
       (fun i x ->
         if i = pos then Queue.add m q;
         Queue.add x q)
       items;
     t.reordered <- t.reordered + 1
   end
   else Queue.add m q);
  note_filled t key

(* Handler-originated sends go through the unreliable link: an optional
   duplicate copy first, then an independent loss draw per copy, then
   possibly out-of-order placement. Every draw is guarded by its knob
   being > 0 so networks created without a knob see the exact historical
   draw sequence. *)
let post t rng ~from sends =
  List.iter
    (fun (q, msg) ->
      let sid = stamp t ~from in
      let copies =
        if t.duplication > 0. && Prng.Splitmix.bernoulli rng t.duplication
        then begin
          t.duplicated <- t.duplicated + 1;
          2
        end
        else 1
      in
      for _ = 1 to copies do
        if t.loss > 0. && Prng.Splitmix.bernoulli rng t.loss then
          t.dropped <- t.dropped + 1
        else enqueue t rng (from, q) (App (msg, sid))
      done)
    sends

(* Markers take the same unreliable link as handler sends, but their
   draws come from the caller's (snapshot layer's) own PRNG stream: the
   scheduler stream never sees a snapshot-dependent draw, so the only
   perturbation snapshots cause is the markers actually in the queues.
   Marker duplication needs no counter bump — a duplicate marker is
   idempotent at the receiver (the channel is already closed). *)
let send_marker t rng ~from ~into ~epoch =
  if not (Topology.Graph.is_edge t.graph from into) then
    invalid_arg "Network.send_marker: not an edge";
  t.markers_sent <- t.markers_sent + 1;
  let copies =
    if t.duplication > 0. && Prng.Splitmix.bernoulli rng t.duplication then 2
    else 1
  in
  for _ = 1 to copies do
    if t.loss > 0. && Prng.Splitmix.bernoulli rng t.loss then
      t.markers_dropped <- t.markers_dropped + 1
    else enqueue t rng (from, into) (Marker epoch)
  done

let tick_down t =
  Array.iteri
    (fun p remaining ->
      if remaining > 0 then begin
        t.down.(p) <- remaining - 1;
        if t.down.(p) = 0 then
          match t.on_recover with
          | None -> ()
          | Some f -> t.states.(p) <- f ~self:p t.states.(p)
      end)
    t.down

let fire_timeout t rng =
  match t.timeout with
  | None -> false
  | Some f ->
      let p = Prng.Splitmix.int rng (Topology.Graph.n t.graph) in
      if t.down.(p) = 0 then begin
        let s', sends = f ~self:p t.states.(p) in
        t.states.(p) <- s';
        post t rng ~from:p sends
      end;
      (* A timer drawn on a crashed process simply does not fire, but the
         scheduler step still happened. *)
      true

(* Delivery-side profiling: advance the receiver's Lamport clock, take
   the send→deliver latency if the stamp slot still holds this id, and
   append the hop record. *)
let observe_delivery t ~into sid =
  match t.np with
  | None -> ()
  | Some p ->
      if sid >= 0 && p.s_id.(sid land p.s_mask) = sid then begin
        let slot = sid land p.s_mask in
        let send_l = p.s_lamport.(slot) in
        let recv_l = max (p.lamport.(into) + 1) (send_l + 1) in
        p.lamport.(into) <- recv_l;
        let lat = Obs.Prof.now p.prof - p.s_send_ns.(slot) in
        Obs.Prof.observe p.ptr p.h_latency lat;
        let h = p.hop_next in
        p.hop_id.(h) <- sid;
        p.hop_from.(h) <- p.s_from.(slot);
        p.hop_into.(h) <- into;
        p.hop_send_l.(h) <- send_l;
        p.hop_recv_l.(h) <- recv_l;
        p.hop_lat.(h) <- lat;
        p.hop_next <- (h + 1) land p.hop_mask;
        p.hop_total <- p.hop_total + 1
      end
      else p.lamport.(into) <- p.lamport.(into) + 1

(* Queue depths sampled on a tick (every 64th step): total in-flight
   plus each nonempty channel's depth — the mp hot path's backlog
   signal without a per-step table scan. *)
let sample_depths t =
  match t.np with
  | None -> ()
  | Some p ->
      p.steps <- p.steps + 1;
      if p.steps land 63 = 0 then begin
        Obs.Prof.observe p.ptr p.h_depth (in_flight t);
        Hashtbl.iter
          (fun _ q ->
            let d = Queue.length q in
            if d > 0 then Obs.Prof.observe p.ptr p.h_chan d)
          t.channels
      end

let step t rng =
  sample_depths t;
  let acted =
    if t.sched_nonempty = 0 then fire_timeout t rng
    else if t.timeout <> None && Prng.Splitmix.bernoulli rng 0.125 then
      fire_timeout t rng
    else begin
      let ix = fen_select t (Prng.Splitmix.int rng t.sched_nonempty) in
      let from, into = t.sched_keys.(ix) in
      let q = t.sched_queues.(ix) in
      let item = Queue.pop q in
      note_popped t ix q;
      (match item with
          | Marker epoch ->
              (* Markers evaporate at a crashed interface exactly like
                 application traffic — the snapshot layer's retransmission
                 is what recovers the epoch. *)
              if t.down.(into) > 0 then
                t.markers_dropped <- t.markers_dropped + 1
              else begin
                t.markers_delivered <- t.markers_delivered + 1;
                match t.marker_handler with
                | None -> () (* stale marker from a detached layer *)
                | Some f -> f ~self:into ~from ~epoch
              end
          | App (m, sid) ->
              if t.down.(into) > 0 then
                (* Crashed recipient: the message evaporates at the interface. *)
                t.dropped_down <- t.dropped_down + 1
              else begin
                t.delivered <- t.delivered + 1;
                observe_delivery t ~into sid;
                (* The tap sees the delivery before the handler mutates
                   anything: channel-state recording captures the payload
                   exactly as it crossed the interface. *)
                (match t.delivery_tap with
                | None -> ()
                | Some f -> f ~self:into ~from m);
                let s', sends = t.handler ~self:into ~from t.states.(into) m in
                t.states.(into) <- s';
                post t rng ~from:into sends
              end);
      true
    end
  in
  if acted then tick_down t;
  acted

let lamport t p =
  match t.np with None -> 0 | Some ps -> ps.lamport.(p)

let hops t =
  match t.np with
  | None -> []
  | Some p ->
      let cap = p.hop_mask + 1 in
      let n = min p.hop_total cap in
      let first = if p.hop_total <= cap then 0 else p.hop_next in
      List.init n (fun k ->
          let i = (first + k) land p.hop_mask in
          {
            hop_id = p.hop_id.(i);
            hop_from = p.hop_from.(i);
            hop_into = p.hop_into.(i);
            hop_send_lamport = p.hop_send_l.(i);
            hop_recv_lamport = p.hop_recv_l.(i);
            hop_latency_ns = p.hop_lat.(i);
          })

(* Causal past of one delivery, reconstructed purely from the hop log:
   hop [c] precedes hop [h] when [c] delivered into [h]'s sender with a
   receive Lamport no greater than [h]'s send Lamport — information
   from [c] could have flowed into the send. Among candidates we take
   the latest (max receive Lamport): the tightest causal predecessor.
   Lost and still-in-flight messages simply produce no hop, so the
   chain degrades gracefully under loss/reorder instead of lying. *)
let causal_chain t ~id =
  let all = hops t in
  match List.rev (List.filter (fun h -> h.hop_id = id) all) with
  | [] -> []
  | h :: _ ->
      let rec back h acc =
        let pred =
          List.fold_left
            (fun best c ->
              if
                c.hop_into = h.hop_from
                && c.hop_recv_lamport <= h.hop_send_lamport
              then
                match best with
                | Some b when b.hop_recv_lamport >= c.hop_recv_lamport -> best
                | _ -> Some c
              else best)
            None all
        in
        match pred with
        | Some c when not (List.memq c acc) -> back c (c :: acc)
        | _ -> acc
      in
      back h [ h ]

let run ?(max_deliveries = 5_000_000) ?stop t rng =
  let stop_now () = match stop with Some f -> f t | None -> false in
  let rec loop budget =
    if budget = 0 then `Max_deliveries
    else if stop_now () then `Stopped
    else if step t rng then loop (budget - 1)
    else `Idle
  in
  loop max_deliveries
