(** Flat FIFO ring buffer — the per-channel message queue of the mp
    runtime. Backing storage is allocated lazily on the first {!push}
    and doubled on demand; once warm, push/pop allocate nothing, which
    is what the b4 minor-words-per-step gate measures. Not thread-safe;
    one ring belongs to one scheduler. *)

type 'a t

val create : unit -> 'a t
(** An empty ring with no backing storage yet. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the back. Amortized O(1), allocation-free unless the ring
    grows. *)

val pop : 'a t -> 'a
(** Remove and return the front element.
    @raise Invalid_argument when empty. *)

val peek : 'a t -> 'a
(** The front element without removing it.
    @raise Invalid_argument when empty. *)

val get : 'a t -> int -> 'a
(** [get t i] is the element at position [i] (0 = front).
    @raise Invalid_argument out of range. *)

val insert : 'a t -> int -> 'a -> unit
(** [insert t i x] places [x] at position [i] (0 = front), shifting the
    tail back — the adversarial-reorder primitive: the new element
    overtakes everything at positions [i .. length). [insert t (length
    t) x] is [push]. @raise Invalid_argument out of range. *)

val clear : 'a t -> unit
(** Empty the ring, keeping its storage. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
(** Front first. *)

val capacity : 'a t -> int
(** Current backing-array size (0 before the first push) — exposed for
    the growth tests. *)
