(* Flat ring buffer per directed channel: the zero-allocation replacement
   for the Queue.t-per-channel layout. Storage is allocated lazily on the
   first push (no dummy element, no Obj.magic — the first pushed value
   seeds the backing array, which also keeps float-array representation
   honest) and doubles when full, so the steady-state push/pop hot path
   touches only the three header fields. Capacity is always a power of
   two so position arithmetic is a mask, not a division. *)

type 'a t = {
  mutable buf : 'a array; (* [||] until the first push *)
  mutable head : int; (* index of the front element *)
  mutable len : int;
}

let initial_capacity = 8

let create () = { buf = [||]; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) t.buf.(0) in
  (* Unroll the wrap: [head .. cap) then [0 .. head). *)
  let first = cap - t.head in
  Array.blit t.buf t.head buf 0 first;
  Array.blit t.buf 0 buf first t.head;
  t.buf <- buf;
  t.head <- 0

let push t x =
  let cap = Array.length t.buf in
  if cap = 0 then begin
    t.buf <- Array.make initial_capacity x;
    t.head <- 0;
    t.len <- 1
  end
  else begin
    if t.len = cap then grow t;
    let cap = Array.length t.buf in
    t.buf.((t.head + t.len) land (cap - 1)) <- x;
    t.len <- t.len + 1
  end

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let x = t.buf.(t.head) in
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.len <- t.len - 1;
  x

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.buf.(t.head)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: out of range";
  t.buf.((t.head + i) land (Array.length t.buf - 1))

(* Insert [x] so it ends up at position [i] (0 = front), shifting
   [i .. len) back by one — the adversarial-reorder primitive. O(len - i)
   array moves, no allocation unless the ring must grow. *)
let insert t i x =
  if i < 0 || i > t.len then invalid_arg "Ring.insert: out of range";
  if i = t.len then push t x
  else begin
    if t.len = Array.length t.buf then grow t;
    let mask = Array.length t.buf - 1 in
    let j = ref t.len in
    while !j > i do
      t.buf.((t.head + !j) land mask) <- t.buf.((t.head + !j - 1) land mask);
      decr j
    done;
    t.buf.((t.head + i) land mask) <- x;
    t.len <- t.len + 1
  end

let clear t =
  t.head <- 0;
  t.len <- 0

let iter f t =
  if t.len > 0 then begin
    let mask = Array.length t.buf - 1 in
    for k = 0 to t.len - 1 do
      f t.buf.((t.head + k) land mask)
    done
  end

let to_list t =
  if t.len = 0 then []
  else begin
    let mask = Array.length t.buf - 1 in
    List.init t.len (fun k -> t.buf.((t.head + k) land mask))
  end

let capacity t = Array.length t.buf
