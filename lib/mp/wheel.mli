(** Hierarchical timer wheel over integer timer ids — the O(expired)
    replacement for the per-step down-counter and backoff scans. Six
    levels of 64 slots; arming is O(1), a tick with nothing due costs an
    array read, cancellation and re-arming are lazy (stale slot entries
    drop when they surface). Ticks are abstract: the network advances
    the wheel once per acted scheduler step. *)

type t

val create : ids:int -> t
(** A wheel for timer ids [0 .. ids-1], at tick 0, nothing armed. *)

val now : t -> int
(** Current tick. *)

val arm : t -> int -> at:int -> unit
(** [arm t id ~at] (re-)arms [id] to fire at absolute tick [at]; a
    previous arming of the same id is superseded.
    @raise Invalid_argument unless [at > now t]. *)

val cancel : t -> int -> unit
(** Disarm [id]; idempotent. O(1) — the slot entry is dropped lazily. *)

val armed : t -> int -> bool
val deadline : t -> int -> int
(** [id]'s pending fire tick, [-1] when unarmed. *)

val pending : t -> int
(** Number of armed ids. *)

val next : t -> int option
(** Earliest pending deadline — O(ids), for idle jumps only. *)

val advance : t -> upto:int -> (int -> unit) -> unit
(** [advance t ~upto fire] moves the clock to [upto], calling [fire id]
    for every timer due in [(now, upto]], in deadline order (arming
    order within a tick). Timers armed by [fire] for later ticks within
    the window fire in the same sweep. *)
