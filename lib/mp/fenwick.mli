(** Fenwick (binary-indexed) tree over boolean flags, specialized for
    the channel scheduler: flag [i] is "channel [i] is nonempty", and
    one uniform draw in [\[0, count)] selects a nonempty channel in
    canonical index order via {!select}. Maintained flag transitions
    are O(log n); select is O(log n); both allocation-free. *)

type t

val create : int -> t
(** [create n] — [n] flags, all clear. *)

val size : t -> int
val count : t -> int
(** Number of set flags. *)

val mem : t -> int -> bool
(** Is flag [i] set? *)

val set : t -> int -> unit
(** Set flag [i]; idempotent. *)

val clear : t -> int -> unit
(** Clear flag [i]; idempotent. *)

val select : t -> int -> int
(** [select t k] is the index of the [(k+1)]-th set flag (0-based [k]),
    the same walk the pre-ring network used — one PRNG draw bounded by
    {!count} reproduces the historical channel choice exactly. Behaviour
    is unspecified unless [0 <= k < count t]. *)
