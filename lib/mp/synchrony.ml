(* Partial synchrony a la Dwork–Lynch–Stockmeyer (SNIPPETS Snippet 3):
   the message delay bound Δ is known, the global stabilization time GST
   is unknown to the protocol but fixed by the adversary. The network
   realizes the pair as: before [gst] the loss/duplication/reorder knobs
   apply unchanged; from step [gst] on, fault draws are suppressed and a
   round-robin age probe forces delivery from any channel that has been
   continuously nonempty for more than [delta] steps — so after GST every
   channel head is delivered within [delta + C] steps, C the number of
   directed channels (the probe visits each channel once per C steps).
   The window layer's RTO is derived from [delta]; its liveness claim is
   stated against exactly this model. *)

type t = { delta : int; gst : int }

let make ~delta ~gst =
  if delta < 1 then invalid_arg "Synchrony.make: delta must be >= 1";
  if gst < 0 then invalid_arg "Synchrony.make: gst must be >= 0";
  { delta; gst }

let delta t = t.delta
let gst t = t.gst

let to_string t = Printf.sprintf "%d/%d" t.delta t.gst

let of_string s =
  match String.split_on_char '/' (String.trim s) with
  | [ d; g ] -> (
      match (int_of_string_opt d, int_of_string_opt g) with
      | Some delta, Some gst when delta >= 1 && gst >= 0 -> Ok { delta; gst }
      | _ -> Error (Printf.sprintf "bad synchrony %S (expected DELTA/GST)" s))
  | _ -> Error (Printf.sprintf "bad synchrony %S (expected DELTA/GST)" s)
