(** Sliding-window retransmission for one directed channel (data-link
    style: sequence numbers, cumulative acks, nak/selective retransmit),
    as a pure state-machine pair — the caller owns the timers (the
    network's wheel) and the actual sending.

    Epochs make the pair self-stabilizing under crash-recovery and
    channel garbage: receivers adopt any foreign epoch (finite stray
    frames perturb them finitely often), senders ignore foreign acks and
    {e resync} — bump the epoch, renumber the unacked window from zero —
    when a valid ack proves the receiver lost its state. Within one
    receiver epoch every accepted payload is delivered exactly once, in
    order; across a receiver reset, payloads acked before the crash are
    not replayed (the synchronizer above is full-state and refreshed, so
    it tolerates this).

    Liveness under partial synchrony ({!Synchrony}): after GST a frame
    or ack in flight is delivered within [delta + C] steps, so with RTO
    ≥ 2(delta + C) every RTO fire makes progress — the window advances
    within O(delta + C) steps per frame, and a burst of [k] sends drains
    in O((k/w)(delta + C)) after GST regardless of pre-GST losses. *)

type 'a frame =
  | Data of { epoch : int; seq : int; body : 'a }
  | Ack of { epoch : int; cum : int; nak : int }
      (** [cum]: everything [<= cum] received; [nak]: first missing seq
          the receiver wants retransmitted, [-1] for none *)

type 'a sender
type 'a receiver

val sender : ?epoch:int -> int -> 'a sender
(** [sender w] — window size [w >= 1]. *)

val receiver : ?epoch:int -> int -> 'a receiver

val send : 'a sender -> 'a -> 'a frame list
(** Queue a payload: returns the Data frame to transmit now, or [[]] if
    the window is full (the payload waits in the overflow backlog and is
    assigned a seq when an ack opens the window). *)

val send_latest : 'a sender -> 'a -> 'a frame list
(** [send], but for full-state payloads where newer supersedes older:
    the overflow backlog is replaced by this payload instead of grown,
    bounding the channel's lag at the window plus one pending payload.
    Payloads already sequence-numbered (in flight) are not recalled. *)

val on_ack : 'a sender -> epoch:int -> cum:int -> nak:int -> 'a frame list
(** Process an ack: releases the window through [cum], emits backlog
    frames that now fit, retransmits the naked seq if still unacked.
    Foreign-epoch acks are ignored; a valid ack behind the send base
    triggers resync (fresh epoch, unacked frames renumbered from 0). *)

val on_rto : 'a sender -> 'a frame list
(** Retransmission timeout: resend the base frame (cumulative-ack
    repair), [[]] when nothing is in flight. *)

val on_data :
  'a receiver -> epoch:int -> seq:int -> 'a -> 'a list * 'a frame
(** Process a Data frame: returns the in-order payloads it unlocks
    (possibly several, possibly none) and the ack to send back. *)

val reset_sender : 'a sender -> unit
(** Crash amnesia: drop all window state and move to a fresh epoch. *)

val reset_receiver : 'a receiver -> unit
(** Crash amnesia: fresh epoch (so the next Data frame forces adoption
    rather than resuming stale numbering), empty window. *)

val busy : 'a sender -> bool
(** Frames in flight or backlogged — the RTO timer should be armed. *)

val in_flight : 'a sender -> int
val backlog : 'a sender -> int
val retransmits : 'a sender -> int
(** RTO, nak and resync retransmissions, cumulative. *)

val sender_epoch : 'a sender -> int
val receiver_epoch : 'a receiver -> int
val expected : 'a receiver -> int
