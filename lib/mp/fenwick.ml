(* Fenwick tree over per-channel nonempty flags — the scheduler's uniform
   draw among nonempty channels in canonical order, factored out of
   Network so the select/flag-transition logic is unit-testable on its
   own. The select loop is kept byte-for-byte equivalent to the one the
   network has used since the Hashtbl-of-queues era: the (k+1)-th set
   flag by descending powers of two, so the same PRNG draw picks the
   same channel before and after the ring-buffer refactor. *)

type t = {
  n : int;
  flags : bool array;
  fen : int array; (* 1-based partial sums over the flags *)
  mutable count : int;
}

let create n =
  if n < 0 then invalid_arg "Fenwick.create";
  { n; flags = Array.make n false; fen = Array.make (n + 1) 0; count = 0 }

let size t = t.n
let count t = t.count
let mem t i = t.flags.(i)

let add t i delta =
  let i = ref (i + 1) in
  while !i <= t.n do
    t.fen.(!i) <- t.fen.(!i) + delta;
    i := !i + (!i land - !i)
  done

let set t i =
  if not t.flags.(i) then begin
    t.flags.(i) <- true;
    t.count <- t.count + 1;
    add t i 1
  end

let clear t i =
  if t.flags.(i) then begin
    t.flags.(i) <- false;
    t.count <- t.count - 1;
    add t i (-1)
  end

(* Index of the (k+1)-th set flag, 0-based: classic Fenwick select by
   descending powers of two. Caller guarantees [0 <= k < count]. *)
let select t k =
  let pw = ref 1 in
  while !pw * 2 <= t.n do
    pw := !pw * 2
  done;
  let pos = ref 0 and rem = ref k in
  while !pw > 0 do
    let np = !pos + !pw in
    if np <= t.n && t.fen.(np) <= !rem then begin
      pos := np;
      rem := !rem - t.fen.(np)
    end;
    pw := !pw lsr 1
  done;
  !pos
