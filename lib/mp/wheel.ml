(* Hierarchical timer wheel, indexed by an integer timer id. Six levels
   of 64 slots cover 2^36 ticks of horizon; further-out deadlines alias
   into the top level and are re-bucketed as they surface (the standard
   hashed-wheel trick). Arming is O(1); a tick touches one slot per
   level boundary crossed, so a step with no due timers costs an array
   read — the property that replaces the O(n)-per-step down-counter and
   backoff scans.

   Cancellation and re-arming are lazy: [deadline.(id)] holds the one
   authoritative fire time (or -1). Slot entries are just ids; an entry
   whose id's deadline does not match the surfacing tick is stale (the
   timer was cancelled or re-armed) and is dropped, except that an entry
   surfacing *early* (top-level aliasing) is re-inserted for its real
   deadline. Each id therefore fires at most once per arming, in tick
   order, regardless of how many stale entries linger. *)

let bits = 6
let slots = 1 lsl bits (* 64 *)
let levels = 6

type t = {
  wheel : int list array array; (* [level].[slot] -> timer ids *)
  deadline : int array; (* per id: absolute fire tick, -1 = unarmed *)
  mutable now : int;
  mutable armed : int; (* ids with a live deadline *)
}

let create ~ids =
  if ids < 0 then invalid_arg "Wheel.create";
  {
    wheel = Array.init levels (fun _ -> Array.make slots []);
    deadline = Array.make (max ids 1) (-1);
    now = 0;
    armed = 0;
  }

let now t = t.now
let pending t = t.armed
let armed t id = t.deadline.(id) >= 0
let deadline t id = t.deadline.(id)

(* Bucket an entry by how far out its deadline is *from the current
   tick*: level l spans [64^l, 64^(l+1)) ticks ahead, slot = the
   deadline's l-th 6-bit digit. Deadlines beyond the horizon alias into
   the top level and re-bucket on surfacing. *)
let insert t id at =
  let delta = at - t.now in
  let rec level l span =
    if l = levels - 1 || delta < span * slots then l
    else level (l + 1) (span * slots)
  in
  let l = level 0 1 in
  let slot = (at lsr (bits * l)) land (slots - 1) in
  t.wheel.(l).(slot) <- id :: t.wheel.(l).(slot)

let arm t id ~at =
  if at <= t.now then invalid_arg "Wheel.arm: deadline not in the future";
  if t.deadline.(id) < 0 then t.armed <- t.armed + 1;
  t.deadline.(id) <- at;
  insert t id at

let cancel t id =
  if t.deadline.(id) >= 0 then begin
    t.deadline.(id) <- -1;
    t.armed <- t.armed - 1
  end

(* Earliest live deadline, scanning the id table: O(ids), used only on
   idle jumps (all channels empty), never on the per-step path. *)
let next t =
  if t.armed = 0 then None
  else begin
    let best = ref max_int in
    Array.iter (fun d -> if d >= 0 && d < !best then best := d) t.deadline;
    if !best = max_int then None else Some !best
  end

(* One tick: cascade any level whose digit rolled over, then drain the
   level-0 slot. Entries are processed oldest-first (slots are built as
   LIFO lists, reversed on drain) so firing order within a tick is the
   arming order — deterministic. *)
let tick t fire =
  t.now <- t.now + 1;
  let rec cascade l =
    if l < levels && t.now land ((1 lsl (bits * l)) - 1) = 0 then begin
      let slot = (t.now lsr (bits * l)) land (slots - 1) in
      let entries = List.rev t.wheel.(l).(slot) in
      t.wheel.(l).(slot) <- [];
      List.iter
        (fun id ->
          let d = t.deadline.(id) in
          if d >= t.now then insert t id d)
        entries;
      cascade (l + 1)
    end
  in
  cascade 1;
  let slot = t.now land (slots - 1) in
  let entries = List.rev t.wheel.(0).(slot) in
  t.wheel.(0).(slot) <- [];
  List.iter
    (fun id ->
      let d = t.deadline.(id) in
      if d = t.now then begin
        t.deadline.(id) <- -1;
        t.armed <- t.armed - 1;
        fire id
      end
      else if d > t.now then insert t id d)
    entries

let advance t ~upto fire =
  (* With nothing armed the clock can jump: stale slot entries are
     harmless (their deadlines are behind [now] and drop on surfacing). *)
  if t.armed = 0 then t.now <- max t.now upto
  else
    while t.now < upto do
      tick t fire
    done
