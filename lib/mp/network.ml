type ('s, 'm) handler = self:int -> from:int -> 's -> 'm -> 's * (int * 'm) list

(* Channel items: application payloads (with their stamp id) share the
   FIFO rings with snapshot markers — the Chandy–Lamport layer rides
   *under* the application protocol, so markers suffer the same loss,
   duplication, reordering and crash-evaporation as everything else.
   A network without an attached snapshot layer never enqueues markers
   and behaves byte-for-byte as before. *)
type 'm item = App of 'm * int | Marker of int (* snapshot epoch *)

(* Profiling state: Lamport stamps and hop logging.

   Every handler- or timeout-originated send is stamped with a fresh
   message id and the sender's incremented Lamport clock; the stamp
   travels with the message through loss, duplication and reordering (a
   duplicate carries the same id — seeing an id delivered twice IS the
   duplication). Stamps live in a ring keyed by [id land s_mask] with
   the id stored for overwrite detection, so a long-delayed message
   whose slot was reused simply loses its latency sample instead of
   producing a bogus one — and the loss is counted ([samples_lost])
   instead of silent, so saturated runs can report how many samples
   their histograms are missing. *)
type prof_state = {
  prof : Obs.Prof.t;
  ptr : Obs.Prof.track; (* the scheduler domain's track *)
  h_latency : Obs.Prof.histo; (* mp.send_deliver_ns *)
  h_depth : Obs.Prof.histo; (* mp.in_flight, sampled every 64 steps *)
  h_chan : Obs.Prof.histo; (* mp.channel_depth, nonempty channels only *)
  c_stamped : Obs.Prof.counter; (* mp.sends *)
  lamport : int array;
  s_mask : int;
  s_id : int array;
  s_send_ns : int array;
  s_lamport : int array;
  s_from : int array;
  mutable next_stamp : int;
  mutable samples_lost : int; (* deliveries whose stamp slot was reused *)
  hop_mask : int;
  hop_id : int array;
  hop_from : int array;
  hop_into : int array;
  hop_send_l : int array;
  hop_recv_l : int array;
  hop_lat : int array;
  mutable hop_next : int;
  mutable hop_total : int;
  mutable steps : int;
}

type prof_overwrites = {
  stamps_evicted : int;
  samples_lost : int;
  hops_evicted : int;
}

type hop = {
  hop_id : int;
  hop_from : int;
  hop_into : int;
  hop_send_lamport : int;
  hop_recv_lamport : int;
  hop_latency_ns : int;
}

type ('s, 'm) t = {
  graph : Topology.Graph.t;
  states : 's array;
  (* Directed channels in canonical sorted (from, into) order, stored as
     flat ring buffers indexed densely — the hot path never touches a
     hash table or allocates a key tuple. App stamps: -1 = untracked. *)
  chan_keys : (int * int) array;
  chan_from : int array; (* unpacked keys, parallel to [chan_keys] *)
  chan_into : int array;
  rings : 'm item Ring.t array;
  chan_ix : (int * int, int) Hashtbl.t; (* cold-path (from,into) lookup *)
  nbr_pid : int array array; (* neighbors of p, Graph.neighbors order *)
  nbr_ci : int array array; (* channel index of p -> nbr_pid.(p).(k) *)
  (* O(log C) channel scheduler: one uniform [int] draw bounded by the
     nonempty count selects a nonempty channel in canonical order via
     the Fenwick tree — the same draw, distribution and stream as the
     pre-ring network. *)
  fen : Fenwick.t;
  mutable flight : int; (* total items in rings, maintained *)
  handler : ('s, 'm) handler;
  loss : float;
  duplication : float;
  reorder : float;
  (* Partial synchrony: before [gst] the knobs above apply; from [gst]
     on, fault draws are suppressed and a round-robin age probe forces
     delivery from channels nonempty for more than [delta] steps. *)
  synchrony : Synchrony.t option;
  mutable sync_cursor : int;
  chan_since : int array; (* step a channel last became nonempty *)
  timeout : (self:int -> 's -> 's * (int * 'm) list) option;
  on_recover : (self:int -> 's -> 's) option;
  (* Crash spans as absolute deadlines: [down_until.(p) > now] = down.
     Expiries live on a timer wheel, so a step pays O(recoveries due)
     instead of the old O(n) down-counter scan. *)
  down_until : int array;
  crash_wheel : Wheel.t;
  (* User timers (the window layer's RTO/refresh), keyed per process:
     id = self * timer_keys + key. *)
  mutable timer_keys : int;
  mutable timer_wheel : Wheel.t option;
  mutable timer_handler : (self:int -> key:int -> 's -> 's * (int * 'm) list) option;
  mutable now : int; (* acted steps so far — the wheels' tick clock *)
  np : prof_state option;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable dropped_down : int;
  (* Snapshot-layer hooks; both stay [None] in snapshot-free networks. *)
  mutable marker_handler : (self:int -> from:int -> epoch:int -> unit) option;
  mutable delivery_tap : (self:int -> from:int -> 'm -> unit) option;
  mutable markers_sent : int;
  mutable markers_delivered : int;
  mutable markers_dropped : int; (* lost, or evaporated at a crashed process *)
}

(* Cold-path channel lookup (inject, send_all, channel_contents). *)
let chan t ~from ~into =
  if not (Topology.Graph.is_edge t.graph from into) then
    invalid_arg "Network: not an edge";
  Hashtbl.find t.chan_ix (from, into)

(* Hot-path channel lookup by destination pid: a linear probe of the
   sender's neighbor table — degree-bounded and allocation-free, unlike
   a hash lookup keyed by a fresh tuple. *)
let ci_of t from q =
  let ns = t.nbr_pid.(from) in
  let cs = t.nbr_ci.(from) in
  let len = Array.length ns in
  let rec find i =
    if i >= len then invalid_arg "Network: not an edge"
    else if ns.(i) = q then cs.(i)
    else find (i + 1)
  in
  find 0

(* Flag transitions: [note_filled] after any push (idempotent),
   [note_popped] after any pop. *)
let note_filled t ci =
  if not (Fenwick.mem t.fen ci) then begin
    Fenwick.set t.fen ci;
    t.chan_since.(ci) <- t.now
  end

let note_popped t ci =
  if Ring.is_empty t.rings.(ci) then Fenwick.clear t.fen ci

let make_prof_state prof n =
  if not (Obs.Prof.enabled prof) then None
  else begin
    let s_cap = 1 lsl 15 and hop_cap = 1 lsl 14 in
    Some
      {
        prof;
        ptr = Obs.Prof.track prof 0;
        h_latency = Obs.Prof.histo prof "mp.send_deliver_ns";
        h_depth = Obs.Prof.histo prof "mp.in_flight";
        h_chan = Obs.Prof.histo prof "mp.channel_depth";
        c_stamped = Obs.Prof.counter prof "mp.sends";
        lamport = Array.make n 0;
        s_mask = s_cap - 1;
        s_id = Array.make s_cap (-1);
        s_send_ns = Array.make s_cap 0;
        s_lamport = Array.make s_cap 0;
        s_from = Array.make s_cap 0;
        next_stamp = 0;
        samples_lost = 0;
        hop_mask = hop_cap - 1;
        hop_id = Array.make hop_cap 0;
        hop_from = Array.make hop_cap 0;
        hop_into = Array.make hop_cap 0;
        hop_send_l = Array.make hop_cap 0;
        hop_recv_l = Array.make hop_cap 0;
        hop_lat = Array.make hop_cap 0;
        hop_next = 0;
        hop_total = 0;
        steps = 0;
      }
  end

let create ?(loss = 0.) ?(duplication = 0.) ?(reorder = 0.)
    ?(prof = Obs.Prof.disabled) ?synchrony ?timeout ?on_recover ~init ~handler
    graph =
  let n = Topology.Graph.n graph in
  (* Materialize every directed channel up front, in canonical sorted
     order — the same order the pre-ring scheduler drew from. *)
  let chan_keys =
    List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) (Topology.Graph.edges graph)
    |> List.sort_uniq compare |> Array.of_list
  in
  let c = Array.length chan_keys in
  let chan_ix = Hashtbl.create (2 * c) in
  Array.iteri (fun i k -> Hashtbl.replace chan_ix k i) chan_keys;
  let nbr_pid =
    Array.init n (fun p -> Array.of_list (Topology.Graph.neighbors graph p))
  in
  let nbr_ci =
    Array.init n (fun p ->
        Array.map (fun q -> Hashtbl.find chan_ix (p, q)) nbr_pid.(p))
  in
  {
    graph;
    states = Array.init n init;
    chan_keys;
    chan_from = Array.map fst chan_keys;
    chan_into = Array.map snd chan_keys;
    rings = Array.init c (fun _ -> Ring.create ());
    chan_ix;
    nbr_pid;
    nbr_ci;
    fen = Fenwick.create c;
    flight = 0;
    handler;
    loss;
    duplication;
    reorder;
    synchrony;
    sync_cursor = 0;
    chan_since = Array.make (max c 1) 0;
    timeout;
    on_recover;
    down_until = Array.make n 0;
    crash_wheel = Wheel.create ~ids:n;
    timer_keys = 0;
    timer_wheel = None;
    timer_handler = None;
    now = 0;
    np = make_prof_state prof n;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    dropped_down = 0;
    marker_handler = None;
    delivery_tap = None;
    markers_sent = 0;
    markers_delivered = 0;
    markers_dropped = 0;
  }

let now t = t.now

(* Are the unreliability knobs live? Under partial synchrony they are
   suppressed (without consuming draws) once the clock passes GST. *)
let unreliable t =
  match t.synchrony with
  | None -> true
  | Some sy -> t.now < Synchrony.gst sy

(* One stamp per logical send: duplicated copies and broadcast fan-out
   share the id (seeing one id delivered twice IS the duplication; once
   per neighbor, the broadcast). Stamping never touches the scheduler's
   PRNG, so draw sequences are identical with profiling on or off. *)
let stamp t ~from =
  match t.np with
  | None -> -1
  | Some p ->
      p.lamport.(from) <- p.lamport.(from) + 1;
      let sid = p.next_stamp in
      p.next_stamp <- sid + 1;
      let slot = sid land p.s_mask in
      p.s_id.(slot) <- sid;
      p.s_send_ns.(slot) <- Obs.Prof.now p.prof;
      p.s_lamport.(slot) <- p.lamport.(from);
      p.s_from.(slot) <- from;
      Obs.Prof.add p.ptr p.c_stamped 1;
      sid

(* Injected messages are unstamped (-1): garbage in flight has no send
   event, so it can have no latency or causal past. *)
let inject t ~from ~into m =
  let ci = chan t ~from ~into in
  Ring.push t.rings.(ci) (App (m, -1));
  t.flight <- t.flight + 1;
  note_filled t ci

let send_all t ~from m =
  let sid = stamp t ~from in
  List.iter
    (fun q ->
      let ci = chan t ~from ~into:q in
      Ring.push t.rings.(ci) (App (m, sid));
      t.flight <- t.flight + 1;
      note_filled t ci)
    (Topology.Graph.neighbors t.graph from)

(* A single stamped send outside the unreliable link (bootstrap traffic,
   like [send_all] but per-edge — the window layer's frames differ per
   channel, so broadcasts can't share one payload). *)
let send_one t ~from ~into m =
  let ci = ci_of t from into in
  let sid = stamp t ~from in
  Ring.push t.rings.(ci) (App (m, sid));
  t.flight <- t.flight + 1;
  note_filled t ci

let state t p = t.states.(p)
let set_state t p s = t.states.(p) <- s
let in_flight t = t.flight
let deliveries t = t.delivered
let dropped t = t.dropped
let duplicated t = t.duplicated
let reordered t = t.reordered
let dropped_while_down t = t.dropped_down
let markers_sent t = t.markers_sent
let markers_delivered t = t.markers_delivered
let markers_dropped t = t.markers_dropped

let on_marker t f = t.marker_handler <- Some f
let on_deliver t f = t.delivery_tap <- Some f

let channel_contents t ~from ~into =
  List.filter_map
    (function App (m, _) -> Some m | Marker _ -> None)
    (Ring.to_list t.rings.(chan t ~from ~into))

let is_down t p = t.down_until.(p) > t.now

let crash t p ~down_for =
  if down_for < 1 then invalid_arg "Network.crash: down_for must be >= 1";
  if p < 0 || p >= Array.length t.down_until then
    invalid_arg "Network.crash: no such process";
  let until = max t.down_until.(p) (t.now + down_for) in
  t.down_until.(p) <- until;
  Wheel.arm t.crash_wheel p ~at:until

(* Adversarial FIFO violation: the new message overtakes at least one
   already-queued one. Drawn only when the knob is on and there is
   something to overtake, so the draw sequence of reorder-free networks
   is untouched. *)
let enqueue t rng ci m =
  let r = t.rings.(ci) in
  (if
     t.reorder > 0.
     && (not (Ring.is_empty r))
     && unreliable t
     && Prng.Splitmix.bernoulli rng t.reorder
   then begin
     let pos = Prng.Splitmix.int rng (Ring.length r) in
     Ring.insert r pos m;
     t.reordered <- t.reordered + 1
   end
   else Ring.push r m);
  t.flight <- t.flight + 1;
  note_filled t ci

(* Handler-originated sends go through the unreliable link: an optional
   duplicate copy first, then an independent loss draw per copy, then
   possibly out-of-order placement. Every draw is guarded by its knob
   being > 0 (and by the clock being pre-GST under partial synchrony)
   so networks created without a knob see the exact historical draw
   sequence. *)
let post t rng ~from sends =
  List.iter
    (fun (q, msg) ->
      let sid = stamp t ~from in
      let ci = ci_of t from q in
      let copies =
        if
          t.duplication > 0. && unreliable t
          && Prng.Splitmix.bernoulli rng t.duplication
        then begin
          t.duplicated <- t.duplicated + 1;
          2
        end
        else 1
      in
      for _ = 1 to copies do
        if t.loss > 0. && unreliable t && Prng.Splitmix.bernoulli rng t.loss
        then t.dropped <- t.dropped + 1
        else enqueue t rng ci (App (msg, sid))
      done)
    sends

(* Markers take the same unreliable link as handler sends, but their
   draws come from the caller's (snapshot layer's) own PRNG stream: the
   scheduler stream never sees a snapshot-dependent draw, so the only
   perturbation snapshots cause is the markers actually in the queues.
   Marker duplication needs no counter bump — a duplicate marker is
   idempotent at the receiver (the channel is already closed). *)
let send_marker t rng ~from ~into ~epoch =
  if not (Topology.Graph.is_edge t.graph from into) then
    invalid_arg "Network.send_marker: not an edge";
  t.markers_sent <- t.markers_sent + 1;
  let ci = Hashtbl.find t.chan_ix (from, into) in
  let copies =
    if t.duplication > 0. && unreliable t
       && Prng.Splitmix.bernoulli rng t.duplication
    then 2
    else 1
  in
  for _ = 1 to copies do
    if t.loss > 0. && unreliable t && Prng.Splitmix.bernoulli rng t.loss then
      t.markers_dropped <- t.markers_dropped + 1
    else enqueue t rng ci (Marker epoch)
  done

let fire_timeout t rng =
  match t.timeout with
  | None -> false
  | Some f ->
      let p = Prng.Splitmix.int rng (Topology.Graph.n t.graph) in
      if not (is_down t p) then begin
        let s', sends = f ~self:p t.states.(p) in
        t.states.(p) <- s';
        post t rng ~from:p sends
      end;
      (* A timer drawn on a crashed process simply does not fire, but the
         scheduler step still happened. *)
      true

(* {2 User timers} — the wheel-driven spontaneous actions the window
   layer runs its RTO and refresh on. Ids are [self * keys + key]. *)

let set_timer_handler t ~keys f =
  if keys < 1 then invalid_arg "Network.set_timer_handler: keys must be >= 1";
  t.timer_keys <- keys;
  t.timer_handler <- Some f;
  t.timer_wheel <- Some (Wheel.create ~ids:(Topology.Graph.n t.graph * keys))

let timer_id t ~self ~key =
  if key < 0 || key >= t.timer_keys then invalid_arg "Network: bad timer key";
  (self * t.timer_keys) + key

let arm_timer t ~self ~key ~after =
  match t.timer_wheel with
  | None -> invalid_arg "Network.arm_timer: no timer handler installed"
  | Some w -> Wheel.arm w (timer_id t ~self ~key) ~at:(t.now + max 1 after)

let cancel_timer t ~self ~key =
  match t.timer_wheel with
  | None -> ()
  | Some w -> Wheel.cancel w (timer_id t ~self ~key)

let timer_armed t ~self ~key =
  match t.timer_wheel with
  | None -> false
  | Some w -> Wheel.armed w (timer_id t ~self ~key)

let fire_timer t rng id =
  match t.timer_handler with
  | None -> ()
  | Some f ->
      let self = id / t.timer_keys and key = id mod t.timer_keys in
      if is_down t self then
        (* Timers survive a crash: re-armed to fire right after the
           recovery instead of firing into a dead process. *)
        (match t.timer_wheel with
        | Some w -> Wheel.arm w id ~at:(t.down_until.(self) + 1)
        | None -> ())
      else begin
        let s', sends = f ~self ~key t.states.(self) in
        t.states.(self) <- s';
        post t rng ~from:self sends
      end

(* Delivery-side profiling: advance the receiver's Lamport clock, take
   the send→deliver latency if the stamp slot still holds this id, and
   append the hop record. *)
let observe_delivery t ~into sid =
  match t.np with
  | None -> ()
  | Some p ->
      if sid >= 0 && p.s_id.(sid land p.s_mask) = sid then begin
        let slot = sid land p.s_mask in
        let send_l = p.s_lamport.(slot) in
        let recv_l = max (p.lamport.(into) + 1) (send_l + 1) in
        p.lamport.(into) <- recv_l;
        let lat = Obs.Prof.now p.prof - p.s_send_ns.(slot) in
        Obs.Prof.observe p.ptr p.h_latency lat;
        let h = p.hop_next in
        p.hop_id.(h) <- sid;
        p.hop_from.(h) <- p.s_from.(slot);
        p.hop_into.(h) <- into;
        p.hop_send_l.(h) <- send_l;
        p.hop_recv_l.(h) <- recv_l;
        p.hop_lat.(h) <- lat;
        p.hop_next <- (h + 1) land p.hop_mask;
        p.hop_total <- p.hop_total + 1
      end
      else begin
        if sid >= 0 then p.samples_lost <- p.samples_lost + 1;
        p.lamport.(into) <- p.lamport.(into) + 1
      end

let prof_overwrites t =
  match t.np with
  | None -> { stamps_evicted = 0; samples_lost = 0; hops_evicted = 0 }
  | Some p ->
      {
        stamps_evicted = max 0 (p.next_stamp - (p.s_mask + 1));
        samples_lost = p.samples_lost;
        hops_evicted = max 0 (p.hop_total - (p.hop_mask + 1));
      }

(* Queue depths sampled on a tick (every 64th step): total in-flight
   (an O(1) maintained counter now) plus each nonempty channel's depth. *)
let sample_depths t =
  match t.np with
  | None -> ()
  | Some p ->
      p.steps <- p.steps + 1;
      if p.steps land 63 = 0 then begin
        Obs.Prof.observe p.ptr p.h_depth t.flight;
        Array.iter
          (fun r ->
            let d = Ring.length r in
            if d > 0 then Obs.Prof.observe p.ptr p.h_chan d)
          t.rings
      end

(* Post-GST age probe: one channel per step, round robin; a hit forces
   delivery from a channel whose head has waited more than Δ steps.
   Consumes no draws, and is skipped entirely without [synchrony]. *)
let forced_channel t =
  match t.synchrony with
  | None -> -1
  | Some sy ->
      if t.now < Synchrony.gst sy then -1
      else begin
        let c = Array.length t.chan_keys in
        t.sync_cursor <- (t.sync_cursor + 1) mod c;
        let ci = t.sync_cursor in
        if Fenwick.mem t.fen ci && t.now - t.chan_since.(ci) > Synchrony.delta sy
        then ci
        else -1
      end

(* Deliver the head item of channel [ci]. *)
let deliver_from t rng ci =
  let r = t.rings.(ci) in
  let from = t.chan_from.(ci) and into = t.chan_into.(ci) in
  let item = Ring.pop r in
  t.flight <- t.flight - 1;
  note_popped t ci;
  match item with
  | Marker epoch ->
      (* Markers evaporate at a crashed interface exactly like
         application traffic — the snapshot layer's retransmission
         is what recovers the epoch. *)
      if is_down t into then t.markers_dropped <- t.markers_dropped + 1
      else begin
        t.markers_delivered <- t.markers_delivered + 1;
        match t.marker_handler with
        | None -> () (* stale marker from a detached layer *)
        | Some f -> f ~self:into ~from ~epoch
      end
  | App (m, sid) ->
      if is_down t into then
        (* Crashed recipient: the message evaporates at the interface. *)
        t.dropped_down <- t.dropped_down + 1
      else begin
        t.delivered <- t.delivered + 1;
        observe_delivery t ~into sid;
        (* The tap sees the delivery before the handler mutates
           anything: channel-state recording captures the payload
           exactly as it crossed the interface. *)
        (match t.delivery_tap with
        | None -> ()
        | Some f -> f ~self:into ~from m);
        let s', sends = t.handler ~self:into ~from t.states.(into) m in
        t.states.(into) <- s';
        post t rng ~from:into sends
      end

(* End of an acted step: advance the clock and both wheels. Crash
   recoveries fire first (in pid order, like the old down-counter scan),
   then user timers (in deadline order) — so a timer due the tick a
   process recovers sees the recovered state. *)
let epilogue t rng =
  t.now <- t.now + 1;
  if Wheel.pending t.crash_wheel > 0 then begin
    let due = ref [] in
    Wheel.advance t.crash_wheel ~upto:t.now (fun p -> due := p :: !due);
    match !due with
    | [] -> ()
    | ps ->
        List.iter
          (fun p ->
            if t.down_until.(p) <= t.now then
              match t.on_recover with
              | None -> ()
              | Some f -> t.states.(p) <- f ~self:p t.states.(p))
          (List.sort compare ps)
  end
  else Wheel.advance t.crash_wheel ~upto:t.now (fun _ -> ());
  match t.timer_wheel with
  | None -> ()
  | Some w -> Wheel.advance w ~upto:t.now (fun id -> fire_timer t rng id)

(* All channels empty and no [timeout] installed: with wheel timers
   pending the clock jumps to the next deadline (that fire is the step);
   otherwise the network is genuinely idle. *)
let idle_timers t =
  match t.timer_wheel with
  | None -> false
  | Some w -> (
      match Wheel.next w with
      | None -> false
      | Some at ->
          t.now <- max t.now (at - 1);
          true)

let step t rng =
  sample_depths t;
  let acted =
    if Fenwick.count t.fen = 0 then
      if t.timeout <> None then fire_timeout t rng else idle_timers t
    else begin
      let fci = forced_channel t in
      if fci >= 0 then begin
        deliver_from t rng fci;
        true
      end
      else if t.timeout <> None && Prng.Splitmix.bernoulli rng 0.125 then
        fire_timeout t rng
      else begin
        let ci = Fenwick.select t.fen (Prng.Splitmix.int rng (Fenwick.count t.fen)) in
        deliver_from t rng ci;
        true
      end
    end
  in
  if acted then epilogue t rng;
  acted

let lamport t p =
  match t.np with None -> 0 | Some ps -> ps.lamport.(p)

let hops t =
  match t.np with
  | None -> []
  | Some p ->
      let cap = p.hop_mask + 1 in
      let n = min p.hop_total cap in
      let first = if p.hop_total <= cap then 0 else p.hop_next in
      List.init n (fun k ->
          let i = (first + k) land p.hop_mask in
          {
            hop_id = p.hop_id.(i);
            hop_from = p.hop_from.(i);
            hop_into = p.hop_into.(i);
            hop_send_lamport = p.hop_send_l.(i);
            hop_recv_lamport = p.hop_recv_l.(i);
            hop_latency_ns = p.hop_lat.(i);
          })

(* Causal past of one delivery, reconstructed purely from the hop log:
   hop [c] precedes hop [h] when [c] delivered into [h]'s sender with a
   receive Lamport no greater than [h]'s send Lamport — information
   from [c] could have flowed into the send. Among candidates we take
   the latest (max receive Lamport): the tightest causal predecessor.
   Lost and still-in-flight messages simply produce no hop, so the
   chain degrades gracefully under loss/reorder instead of lying. *)
let causal_chain t ~id =
  let all = hops t in
  match List.rev (List.filter (fun h -> h.hop_id = id) all) with
  | [] -> []
  | h :: _ ->
      let rec back h acc =
        let pred =
          List.fold_left
            (fun best c ->
              if
                c.hop_into = h.hop_from
                && c.hop_recv_lamport <= h.hop_send_lamport
              then
                match best with
                | Some b when b.hop_recv_lamport >= c.hop_recv_lamport -> best
                | _ -> Some c
              else best)
            None all
        in
        match pred with
        | Some c when not (List.memq c acc) -> back c (c :: acc)
        | _ -> acc
      in
      back h [ h ]

let run ?(max_deliveries = 5_000_000) ?stop t rng =
  let stop_now () = match stop with Some f -> f t | None -> false in
  let rec loop budget =
    if budget = 0 then `Max_deliveries
    else if stop_now () then `Stopped
    else if step t rng then loop (budget - 1)
    else `Idle
  in
  loop max_deliveries
