type ('s, 'm) handler = self:int -> from:int -> 's -> 'm -> 's * (int * 'm) list

type ('s, 'm) t = {
  graph : Topology.Graph.t;
  states : 's array;
  channels : (int * int, 'm Queue.t) Hashtbl.t; (* (from, into) -> FIFO *)
  handler : ('s, 'm) handler;
  loss : float;
  duplication : float;
  reorder : float;
  timeout : (self:int -> 's -> 's * (int * 'm) list) option;
  on_recover : (self:int -> 's -> 's) option;
  down : int array; (* remaining down step-calls per process; 0 = up *)
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable dropped_down : int;
}

let channel t ~from ~into =
  if not (Topology.Graph.is_edge t.graph from into) then
    invalid_arg "Network: not an edge";
  match Hashtbl.find_opt t.channels (from, into) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.channels (from, into) q;
      q

let create ?(loss = 0.) ?(duplication = 0.) ?(reorder = 0.) ?timeout
    ?on_recover ~init ~handler graph =
  let t =
    {
      graph;
      states = Array.init (Topology.Graph.n graph) init;
      channels = Hashtbl.create 64;
      handler;
      loss;
      duplication;
      reorder;
      timeout;
      on_recover;
      down = Array.make (Topology.Graph.n graph) 0;
      delivered = 0;
      dropped = 0;
      duplicated = 0;
      reordered = 0;
      dropped_down = 0;
    }
  in
  (* Materialize every channel so the scheduler can enumerate them. *)
  List.iter
    (fun (u, v) ->
      ignore (channel t ~from:u ~into:v);
      ignore (channel t ~from:v ~into:u))
    (Topology.Graph.edges graph);
  t

let inject t ~from ~into m = Queue.add m (channel t ~from ~into)

let send_all t ~from m =
  List.iter
    (fun q -> Queue.add m (channel t ~from ~into:q))
    (Topology.Graph.neighbors t.graph from)

let state t p = t.states.(p)
let set_state t p s = t.states.(p) <- s

let in_flight t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.channels 0

let deliveries t = t.delivered
let dropped t = t.dropped
let duplicated t = t.duplicated
let reordered t = t.reordered
let dropped_while_down t = t.dropped_down

let crash t p ~down_for =
  if down_for < 1 then invalid_arg "Network.crash: down_for must be >= 1";
  if p < 0 || p >= Array.length t.down then invalid_arg "Network.crash: no such process";
  t.down.(p) <- max t.down.(p) down_for

let is_down t p = t.down.(p) > 0

(* Adversarial FIFO violation: the new message overtakes at least one
   already-queued one. Drawn only when the knob is on and there is
   something to overtake, so the draw sequence of reorder-free networks
   is untouched. *)
let enqueue t rng q m =
  if
    t.reorder > 0.
    && (not (Queue.is_empty q))
    && Prng.Splitmix.bernoulli rng t.reorder
  then begin
    let items = List.of_seq (Queue.to_seq q) in
    let pos = Prng.Splitmix.int rng (List.length items) in
    Queue.clear q;
    List.iteri
      (fun i x ->
        if i = pos then Queue.add m q;
        Queue.add x q)
      items;
    t.reordered <- t.reordered + 1
  end
  else Queue.add m q

(* Handler-originated sends go through the unreliable link: an optional
   duplicate copy first, then an independent loss draw per copy, then
   possibly out-of-order placement. Every draw is guarded by its knob
   being > 0 so networks created without a knob see the exact historical
   draw sequence. *)
let post t rng ~from sends =
  List.iter
    (fun (q, msg) ->
      let copies =
        if t.duplication > 0. && Prng.Splitmix.bernoulli rng t.duplication
        then begin
          t.duplicated <- t.duplicated + 1;
          2
        end
        else 1
      in
      for _ = 1 to copies do
        if t.loss > 0. && Prng.Splitmix.bernoulli rng t.loss then
          t.dropped <- t.dropped + 1
        else enqueue t rng (channel t ~from ~into:q) msg
      done)
    sends

let tick_down t =
  Array.iteri
    (fun p remaining ->
      if remaining > 0 then begin
        t.down.(p) <- remaining - 1;
        if t.down.(p) = 0 then
          match t.on_recover with
          | None -> ()
          | Some f -> t.states.(p) <- f ~self:p t.states.(p)
      end)
    t.down

let fire_timeout t rng =
  match t.timeout with
  | None -> false
  | Some f ->
      let p = Prng.Splitmix.int rng (Topology.Graph.n t.graph) in
      if t.down.(p) = 0 then begin
        let s', sends = f ~self:p t.states.(p) in
        t.states.(p) <- s';
        post t rng ~from:p sends
      end;
      (* A timer drawn on a crashed process simply does not fire, but the
         scheduler step still happened. *)
      true

let nonempty_channels t =
  Hashtbl.fold
    (fun key q acc -> if Queue.is_empty q then acc else key :: acc)
    t.channels []

let step t rng =
  let acted =
    match nonempty_channels t with
    | [] -> fire_timeout t rng
    | channels ->
        if t.timeout <> None && Prng.Splitmix.bernoulli rng 0.125 then
          fire_timeout t rng
        else begin
          let from, into =
            Prng.Splitmix.choose rng (List.sort compare channels)
          in
          let m = Queue.pop (Hashtbl.find t.channels (from, into)) in
          if t.down.(into) > 0 then
            (* Crashed recipient: the message evaporates at the interface. *)
            t.dropped_down <- t.dropped_down + 1
          else begin
            t.delivered <- t.delivered + 1;
            let s', sends = t.handler ~self:into ~from t.states.(into) m in
            t.states.(into) <- s';
            post t rng ~from:into sends
          end;
          true
        end
  in
  if acted then tick_down t;
  acted

let run ?(max_deliveries = 5_000_000) ?stop t rng =
  let stop_now () = match stop with Some f -> f t | None -> false in
  let rec loop budget =
    if budget = 0 then `Max_deliveries
    else if stop_now () then `Stopped
    else if step t rng then loop (budget - 1)
    else `Idle
  in
  loop max_deliveries
