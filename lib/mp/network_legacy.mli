(** Frozen pre-ring event loop: the Hashtbl-of-queues network exactly as
    it shipped before the ring-buffer/timer-wheel rework, kept as (a)
    the baseline the b4 bench measures its speedup against and (b) the
    reference implementation the byte-identity differential tests drive
    in lockstep with {!Network}. Not for new code.

    Asynchronous message-passing substrate (paper §4: "it will be
    interesting to carry our protocol in the message passing model").

    Processes communicate over FIFO channels, one per directed edge. A
    scheduler step delivers the head message of one non-empty channel to
    its recipient's handler, which updates the local state and sends
    messages in turn. The random scheduler is fair with probability 1.
    Channels may start with arbitrary garbage in flight — the
    message-passing analogue of an arbitrary initial configuration.

    The substrate can be made unreliable along the axes Delaët et al.
    identify as the hard part of message-passing snap-stabilization
    (arXiv:0802.1123): probabilistic {e loss}, {e duplication} and
    {e reordering} of handler-sent messages, plus {e crash–recovery} of
    whole processes ({!crash}). All unreliability draws come from the
    scheduler's PRNG stream and are guarded by their knob being non-zero,
    so a network created without a knob replays the exact draw sequence
    it had before the knob existed. *)

type ('s, 'm) handler = self:int -> from:int -> 's -> 'm -> 's * (int * 'm) list
(** [handler ~self ~from state msg] consumes one message and returns the
    new local state plus messages to send as [(neighbor, payload)]. *)

type ('s, 'm) t

val create :
  ?loss:float ->
  ?duplication:float ->
  ?reorder:float ->
  ?prof:Obs.Prof.t ->
  ?timeout:(self:int -> 's -> 's * (int * 'm) list) ->
  ?on_recover:(self:int -> 's -> 's) ->
  init:(int -> 's) ->
  handler:('s, 'm) handler ->
  Topology.Graph.t ->
  ('s, 'm) t
(** [loss] (default 0.) drops each handler-sent message copy with that
    probability (injected messages are never dropped). [duplication]
    (default 0.) enqueues a second copy of a handler-sent message with
    that probability — each copy then takes its own loss draw.
    [reorder] (default 0.) makes an enqueued message overtake at least
    one message already in its channel with that probability (a FIFO
    violation). [timeout] equips processes with a spontaneous action —
    the scheduler occasionally fires it on a random process (and always
    can when all channels are empty), modelling the timers that
    retransmission-based protocols need on unreliable channels; it never
    fires on a crashed process. [on_recover] is applied to a process's
    state at the moment its {!crash} span expires — the hook where a
    protocol models amnesia or re-initialization.

    [?prof] (track 0 = the scheduler's domain) turns on Lamport-stamped
    causal tracing: every handler/timeout send gets a fresh message id
    and the sender's incremented Lamport clock (duplicated copies and
    broadcast fan-out share the id), each delivery advances the
    receiver's clock and appends a {!hop}, and the instruments
    ["mp.send_deliver_ns"] (latency histogram), ["mp.in_flight"] and
    ["mp.channel_depth"] (queue depths sampled every 64th step) and
    ["mp.sends"] fill in. Stamping never touches the scheduler PRNG:
    the run is identical with profiling on or off. *)

val inject : ('s, 'm) t -> from:int -> into:int -> 'm -> unit
(** Plant a message in the channel [from → into] (initial garbage, or a
    kick-off message). @raise Invalid_argument on a non-edge. *)

val send_all : ('s, 'm) t -> from:int -> 'm -> unit
(** Enqueue a broadcast from [from] to all its neighbors. *)

val state : ('s, 'm) t -> int -> 's
val set_state : ('s, 'm) t -> int -> 's -> unit
val in_flight : ('s, 'm) t -> int
(** Total messages currently in channels. *)

val deliveries : ('s, 'm) t -> int
(** Channel deliveries performed so far. *)

val dropped : ('s, 'm) t -> int
(** Messages lost to [loss] so far. *)

val duplicated : ('s, 'm) t -> int
(** Messages that got a second copy enqueued so far. *)

val reordered : ('s, 'm) t -> int
(** Enqueues that violated FIFO order so far. *)

val dropped_while_down : ('s, 'm) t -> int
(** Messages that arrived at a crashed process and evaporated. *)

(** {2 Snapshot layer} — Chandy–Lamport markers multiplexed {e under}
    the application protocol. Markers share the per-edge FIFO queues
    with application payloads (their position in the queue is what
    defines the channel-state cut), travel the same unreliable link
    (loss, duplication, reordering, crash evaporation), and are
    dispatched to {!on_marker} instead of the application handler. A
    network with no attached snapshot layer never carries a marker and
    behaves exactly as before. *)

val send_marker :
  ('s, 'm) t -> Prng.Splitmix.t -> from:int -> into:int -> epoch:int -> unit
(** Post a snapshot marker for [epoch] into the channel [from → into]
    through the unreliable link. Loss/duplication/reorder draws come
    from the {e caller's} PRNG stream (the snapshot layer owns one), so
    the scheduler's own draw sequence never depends on snapshot
    activity. @raise Invalid_argument on a non-edge. *)

val on_marker :
  ('s, 'm) t -> (self:int -> from:int -> epoch:int -> unit) -> unit
(** Install the marker handler: called when a marker is delivered to an
    up process (crashed recipients evaporate markers like any other
    traffic). The handler may re-enter {!send_marker}. *)

val on_deliver : ('s, 'm) t -> (self:int -> from:int -> 'm -> unit) -> unit
(** Install the channel-state recording tap: called on every application
    delivery, after the crash check and {e before} the handler runs, so
    the snapshot layer records payloads exactly as they crossed the
    interface. *)

val channel_contents : ('s, 'm) t -> from:int -> into:int -> 'm list
(** Application payloads currently in flight on [from → into], head
    first, markers elided — the omniscient view differential tests
    compare in-band capture against. @raise Invalid_argument on a
    non-edge. *)

val markers_sent : ('s, 'm) t -> int
val markers_delivered : ('s, 'm) t -> int

val markers_dropped : ('s, 'm) t -> int
(** Markers lost to [loss] or evaporated at a crashed process. *)

(** {2 Crash–recovery} *)

val crash : ('s, 'm) t -> int -> down_for:int -> unit
(** [crash t p ~down_for] takes process [p] down for the next [down_for]
    scheduler steps: messages delivered to it evaporate (counted by
    {!dropped_while_down}), its timers do not fire, and messages it sent
    before crashing stay in flight. Crashing an already-down process
    extends its span to at least [down_for]. When the span expires the
    [on_recover] hook (if any) rewrites its state.
    @raise Invalid_argument if [down_for < 1] or [p] is not a process. *)

val is_down : ('s, 'm) t -> int -> bool

(** {2 Causal tracing} — all empty/zero unless [?prof] was enabled. *)

type hop = {
  hop_id : int;  (** message id; one id delivered twice = a duplicate *)
  hop_from : int;
  hop_into : int;
  hop_send_lamport : int;
  hop_recv_lamport : int;  (** [max (receiver + 1) (send + 1)] *)
  hop_latency_ns : int;  (** send→deliver wall-clock *)
}

val lamport : ('s, 'm) t -> int -> int
(** Process [p]'s current Lamport clock. *)

val hops : ('s, 'm) t -> hop list
(** The delivery log, chronological. A bounded ring (16384 hops) —
    long runs keep the most recent window. *)

val causal_chain : ('s, 'm) t -> id:int -> hop list
(** The causal past of message [id]'s (latest) delivery, oldest first:
    each hop delivered into the next hop's sender with a receive
    Lamport ≤ the send Lamport — the tightest chain of deliveries whose
    information could have flowed into each send. Built only from
    deliveries that actually happened, so it works under loss,
    duplication and reordering; [[]] if [id] was never delivered. *)

(** {2 Scheduling} *)

val step : ('s, 'm) t -> Prng.Splitmix.t -> bool
(** Deliver one message from a uniformly random non-empty channel, or
    (with probability 1/8, or whenever all channels are empty) fire the
    [timeout] of a random process; [false] when channels are empty and no
    [timeout] is installed. Down-spans decrement once per returning-true
    step. *)

val run :
  ?max_deliveries:int ->
  ?stop:(('s, 'm) t -> bool) ->
  ('s, 'm) t ->
  Prng.Splitmix.t ->
  [ `Idle | `Stopped | `Max_deliveries ]
(** Deliver until channels drain, [stop] holds, or the delivery budget
    (default 5_000_000) is exhausted. *)
