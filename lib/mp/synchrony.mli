(** Partial-synchrony channel configuration: known message-delay bound
    [delta], unknown-to-the-protocol global stabilization time [gst]
    (Dwork–Lynch–Stockmeyer). Threaded into {!Network.create}: before
    step [gst] the unreliability knobs apply unchanged; from [gst] on,
    fault draws are suppressed and an O(1)-per-step round-robin age
    probe forces delivery from any channel continuously nonempty for
    more than [delta] steps — so post-GST every channel head delivers
    within [delta + C] steps ([C] = directed channel count). *)

type t

val make : delta:int -> gst:int -> t
(** @raise Invalid_argument unless [delta >= 1] and [gst >= 0]. *)

val delta : t -> int
val gst : t -> int

val to_string : t -> string
(** ["DELTA/GST"], the CLI/schedule token form. *)

val of_string : string -> (t, string) result
