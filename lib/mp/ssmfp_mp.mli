(** SSMFP carried to the message-passing model (paper §4, future work).

    The paper closes by asking whether the protocol can run in the (more
    realistic) message-passing model, noting that no automatic transformer
    from the state model is known. This module implements the classical
    local-synchronizer construction experimentally:

    - every process keeps its SSMFP + routing state (reused verbatim from
      {!Ssmfp.State}) plus *mirrors* of its neighbors' readable variables
      (buffers and routing entries);
    - execution proceeds in pulses: a process entering pulse [k] publishes
      a snapshot of its readable state to its neighbors, and once it holds
      a pulse-[k] snapshot from every neighbor it evaluates its guards
      against that consistent pulse-[k] view, executes its
      highest-priority enabled action (exactly the synchronous-daemon
      semantics of the state model), and enters pulse [k + 1];
    - pulses self-stabilize by maximum adoption (a process receiving a
      snapshot with a larger pulse jumps to it and republishes), the
      standard asynchronous-unison repair, so arbitrary initial pulses,
      mirrors and even garbage snapshots sitting in channels are
      tolerated.

    What this does and does not establish: the construction uses unbounded
    pulse counters, so it is *not* a snap-stabilizing message-passing
    protocol (the open problem stands). The experiments measure the
    behaviour the port actually exhibits — with consistent pulse-aligned
    views the R4/R5 erasure race that loses messages under stale views
    cannot fire, and runs from corrupted starts deliver every valid
    message exactly once. *)

type public = {
  pub_routing : Routing.Selfstab.state;
  pub_bufs : (Ssmfp.Message.t option * Ssmfp.Message.t option) array;
      (** (bufR, bufE) per destination *)
}

type payload = Snapshot of int * public  (** (pulse, readable state) *)

type t

type channel_stats = {
  delivered : int;
  lost : int;  (** dropped by [loss] *)
  duplicated : int;
  reordered : int;
  dropped_while_down : int;  (** evaporated at a crashed process *)
}

type result = {
  outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;  (** messages the network delivered *)
  max_pulse : int;  (** highest pulse reached *)
  oracle : Harness.Oracle.t;
      (** same observables as the state-model runs; "rounds" are pulses *)
  verdict : Harness.Oracle.verdict;
}

val create :
  ?spec:Harness.Fault.spec ->
  ?channel_garbage:int ->
  ?loss:float ->
  ?duplication:float ->
  ?reorder:float ->
  ?seed:int ->
  ?prof:Obs.Prof.t ->
  ?window:int ->
  ?synchrony:Synchrony.t ->
  ?rto:int ->
  Topology.Graph.t ->
  Harness.Workload.t ->
  t
(** [channel_garbage] (default 0) random snapshot messages (random pulses,
    random buffer contents) are planted in random channels; [spec]
    (default pristine) corrupts the process states as in the state-model
    runs; [loss]/[duplication]/[reorder] (default 0.) are the
    {!Network.create} unreliability knobs applied to every sent snapshot.

    [?window] picks the retransmission layer. With [window = 0] (the
    default, byte-identical to every build before the window layer
    existed): exponential backoff — a process's random timer republishes
    its current pulse's snapshot only once [2^backoff] timer fires have
    accumulated, the backoff growing (capped at [2^6]) with each
    retransmission and resetting whenever the pulse advances. With
    [window = w > 0]: each directed channel gets a {!Window}
    sender/receiver pair of size [w]; snapshots ride sequence-numbered
    Data frames, receivers return cumulative acks with nak-based
    selective retransmit, and liveness is driven by deterministic
    per-channel RTO timers plus a slow per-process refresh timer on the
    network's wheel (no random [timeout] at all). Snapshots are
    full-state, so publishing conflates each channel's overflow backlog
    to the newest payload ({!Window.send_latest}) — bounding channel
    lag at [w + 1] payloads so congested channels carry current state
    rather than an unbounded queue of stale pulses. [?rto] overrides the
    {e base} retransmission timeout (default [2 * (delta + C)] under
    [?synchrony], else [max 64 C], where [C] is the directed-channel
    count — the scheduler delivers one message per step, so an RTO
    below the in-flight count would retransmit into its own queue);
    each channel doubles its RTO on consecutive fires without an
    intervening ack (capped at [1024 * rto]) and resets to the base on
    any ack. The refresh period is [max (8 * rto) (16 * C)], staggered
    per process across a whole period.
    Channel garbage is planted as Data frames with random epochs and
    sequence numbers, attacking the window state machines too.

    [?synchrony] threads the partial-synchrony config to
    {!Network.create}: before GST all knobs apply; after GST faults stop
    and channel age is bounded by [delta], which with the window layer's
    epoch resync yields eventual barrier completion from any
    configuration.

    Snapshots are idempotent for receivers, so duplication and
    reordering are tolerated by construction; crashes
    ({!crash_process}) lose the synchronizer's volatile state (mirrors,
    timers, window state) while the SSMFP core and pulse counter survive
    on stable storage.

    [?prof] threads through to {!Network.create} (Lamport stamps, hop
    log, latency and queue-depth histograms) and additionally counts
    every republish and window retransmission in
    ["mp.retransmissions"]. Profiling consumes no PRNG draws: the run is
    identical with it on or off. *)

val run : ?max_deliveries:int -> t -> result
(** Deliver channel messages under the fair random scheduler until every
    buffer and outbox is empty (then verify SP), or the budget (default
    2_000_000) runs out. *)

(** {2 Chaos access}

    Hooks for the chaos layer: segmented driving, mid-run core
    corruption, crash injection and the run's observables. *)

val graph : t -> Topology.Graph.t
val oracle : t -> Harness.Oracle.t
val expected_valid : t -> int

val max_pulse : t -> int
(** Highest pulse reached so far (the mp-model round counter). *)

val channel_deliveries : t -> int

val core : t -> int -> Ssmfp.State.t
(** Process [p]'s SSMFP core state (snapshot mirrors excluded). *)

val set_core : t -> int -> Ssmfp.State.t -> unit
(** Overwrite [p]'s core, keeping its pulse and mirrors — the mp-model
    analogue of [Sim.Engine.set_state] for fault injection. *)

val crash_process : t -> int -> down_for:int -> unit
(** Take a process down for [down_for] scheduler steps (see
    {!Network.crash}); on recovery it forgets mirrors and timers. *)

val channel_stats : t -> channel_stats

val is_down : t -> int -> bool

val pulse_of : t -> int -> int
(** Process [p]'s own pulse counter (as opposed to the global
    {!max_pulse}). *)

val window : t -> int
(** The window size this instance was created with (0 = backoff mode). *)

val window_retransmits : t -> int
(** Total window-layer retransmissions (RTO, nak, resync) across all
    channels; 0 in backoff mode. *)

val prof_overwrites : t -> Network.prof_overwrites
(** Profiling-ring overwrite accounting from the underlying network
    (stamp/hop ring evictions, lost latency samples) — all zero without
    [?prof]. *)

(** {2 Snapshot layer access}

    The distributed-snapshot subsystem ([lib/snapshot]) layers a
    Chandy–Lamport marker protocol {e under} this synchronizer: markers
    share the channels with pulse snapshots, and these pass-throughs
    let the engine attach without exposing the network record. *)

type event_hook = pid:int -> pulse:int -> Ssmfp.Protocol.event -> unit

val set_event_hook : t -> event_hook -> unit
(** Install an in-band event observer: called for every protocol event a
    barrier execution emits, right after the omniscient oracle observes
    it, attributed to the acting process and its pulse. The snapshot
    layer's per-process ledgers are fed from here. *)

val on_marker : t -> (self:int -> from:int -> epoch:int -> unit) -> unit
val on_deliver : t -> (self:int -> from:int -> payload -> unit) -> unit

val send_marker :
  t -> Prng.Splitmix.t -> from:int -> into:int -> epoch:int -> unit
(** {!Network.send_marker} on the underlying network: the marker takes
    the same unreliable link as the snapshots, with fault draws from the
    caller's PRNG stream. *)

val channel_contents : t -> from:int -> into:int -> payload list
(** In-flight snapshots on one directed channel, head first (markers
    elided) — the omniscient channel view for differential tests. *)

type marker_stats = { m_sent : int; m_delivered : int; m_dropped : int }

val marker_stats : t -> marker_stats

val hops : t -> Network.hop list
(** The network's causal delivery log (empty without [?prof]). *)

val causal_chain : t -> id:int -> Network.hop list
(** {!Network.causal_chain} on the underlying network. *)

val lamport : t -> int -> int
(** Process [p]'s Lamport clock (0 without [?prof]). *)

val all_drained : t -> bool
(** Every outbox and buffer is empty — the mp-model quiescence test. *)

val drive :
  ?max_deliveries:int ->
  ?stop:(t -> bool) ->
  t ->
  [ `Idle | `Stopped | `Max_deliveries ]
(** Run the scheduler until [stop] holds (checked before each step), the
    channels drain with no timer installed, or the budget runs out —
    the segmented form of {!run} the chaos layer interleaves with
    injections. *)
