type public = {
  pub_routing : Routing.Selfstab.state;
  pub_bufs : (Ssmfp.Message.t option * Ssmfp.Message.t option) array;
}

type payload = Snapshot of int * public

(* What actually rides the channels. With [window = 0] every payload is
   [Plain] and the network behaves byte-for-byte as before the window
   layer existed; with [window > 0] payloads travel inside sliding-
   window Data frames and acks share the channels. *)
type net_msg = Plain of payload | Win of payload Window.frame

(* Per-neighbor snapshot store: every snapshot with pulse >= ours is kept
   (at most a couple after pruning), so a barrier can never be starved by
   a newer snapshot overwriting the one it still needs. *)
type proc = {
  core : Ssmfp.State.t;
  pulse : int;
  snaps : (int * (int * public) list) list; (* neighbor -> (pulse, pub) list *)
  backoff : int; (* consecutive retransmissions without pulse progress *)
  ticks : int; (* timer fires since the last retransmission *)
}

type event_hook = pid:int -> pulse:int -> Ssmfp.Protocol.event -> unit

type t = {
  graph : Topology.Graph.t;
  net : (proc, net_msg) Network.t;
  rng : Prng.Splitmix.t;
  oracle : Harness.Oracle.t;
  expected_valid : int;
  max_pulse : int ref;
  on_event : event_hook option ref;
  drain_witness : int ref; (* last process seen busy by [all_drained] *)
  window : int;
  (* Window machinery, empty arrays when [window = 0]: sender/receiver
     state per directed channel, indexed [p].[slot] with slot the index
     of the neighbor in [nbrs.(p)]. *)
  nbrs : int array array;
  win_send : payload Window.sender array array;
  win_recv : payload Window.receiver array array;
}

type channel_stats = {
  delivered : int;
  lost : int;
  duplicated : int;
  reordered : int;
  dropped_while_down : int;
}

type result = {
  outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;
  max_pulse : int;
  oracle : Harness.Oracle.t;
  verdict : Harness.Oracle.verdict;
}

let public_of (core : Ssmfp.State.t) =
  {
    pub_routing = Array.copy core.Ssmfp.State.routing;
    pub_bufs =
      Array.map
        (fun sl -> (sl.Ssmfp.State.buf_r, sl.Ssmfp.State.buf_e))
        core.Ssmfp.State.slots;
  }

(* Reconstruct the State.t a guard would read for neighbor [q] from its
   published snapshot. Fields p never reads from a neighbor (queue, rr,
   request, outbox) get placeholders. *)
let state_of_public q pub =
  {
    Ssmfp.State.routing = pub.pub_routing;
    slots =
      Array.map
        (fun (r, e) -> { Ssmfp.State.buf_r = r; buf_e = e; queue = [ q ] })
        pub.pub_bufs;
    rr = 0;
    request = false;
    outbox = [];
  }

let snaps_for proc q =
  Option.value ~default:[] (List.assoc_opt q proc.snaps)

let store_snap proc q pulse pub =
  let kept =
    (pulse, pub)
    :: List.filter
         (fun (k, _) -> k <> pulse && k >= proc.pulse)
         (snaps_for proc q)
  in
  { proc with snaps = (q, kept) :: List.remove_assoc q proc.snaps }

let prune proc =
  {
    proc with
    snaps =
      List.map
        (fun (q, l) -> (q, List.filter (fun (k, _) -> k >= proc.pulse) l))
        proc.snaps;
  }

let barrier_ready g proc ~self =
  List.for_all
    (fun q -> List.mem_assoc proc.pulse (snaps_for proc q))
    (Topology.Graph.neighbors g self)

(* Any pulse progress resets the retransmission backoff: the channel is
   evidently moving again. *)
let advance_pulse proc pulse = { proc with pulse; backoff = 0; ticks = 0 }

let make_handler g oracle max_pulse_ref hook_ref =
  let n = Topology.Graph.n g in
  let proto = Ssmfp.Protocol.make g in
  (* Same states [State.clean] would build, but sharing one BFS sweep per
     destination across all processes: [n] separate [init_correct] calls
     are cubic in [n] and dominated start-up wall-clock at 1k nodes. *)
  let dummy =
    let correct = Routing.Selfstab.init_correct_all g in
    Array.init n (fun p ->
        {
          (Ssmfp.State.clean g ~correct_routing:false p) with
          Ssmfp.State.routing = correct.(p);
        })
  in
  let publish proc =
    (proc.pulse, Snapshot (proc.pulse, public_of proc.core))
  in
  let execute_barrier ~self proc =
    (* Raise request_p if the higher layer has pending traffic. *)
    let core =
      if (not proc.core.Ssmfp.State.request) && proc.core.Ssmfp.State.outbox <> []
      then begin
        Harness.Oracle.observe_request_raised oracle ~round:proc.pulse ~pid:self;
        { proc.core with Ssmfp.State.request = true }
      end
      else proc.core
    in
    let states =
      Array.init n (fun i ->
          if i = self then core
          else if Topology.Graph.is_edge g self i then
            match List.assoc_opt proc.pulse (snaps_for proc i) with
            | Some pub -> state_of_public i pub
            | None -> dummy.(i) (* unreachable: barrier_ready checked *)
          else dummy.(i))
    in
    let net = Sim.Engine.synthetic ~graph:g ~states in
    let core =
      match proto.Sim.Engine.enabled net self with
      | [] -> core
      | action :: _ ->
          let core', events = proto.Sim.Engine.apply net self action in
          List.iter
            (fun ev ->
              Harness.Oracle.observe oracle ~round:proc.pulse ~pid:self ev;
              (* The in-band observer: each process's local event ledger
                 (the snapshot layer's) sees exactly what the omniscient
                 oracle sees, but attributed to the acting process. *)
              match !hook_ref with
              | None -> ()
              | Some f -> f ~pid:self ~pulse:proc.pulse ev)
            events;
          core'
    in
    let proc = prune (advance_pulse { proc with core } (proc.pulse + 1)) in
    if proc.pulse > !max_pulse_ref then max_pulse_ref := proc.pulse;
    proc
  in
  let handler ~self ~from proc (Snapshot (k, pub)) =
    let proc = store_snap proc from k pub in
    let sends = ref [] in
    let broadcast proc =
      let _, msg = publish proc in
      sends :=
        !sends @ List.map (fun q -> (q, msg)) (Topology.Graph.neighbors g self)
    in
    (* Maximum adoption: jump forward to a larger pulse and republish. *)
    let proc =
      if k > proc.pulse then begin
        let proc = prune (advance_pulse proc k) in
        broadcast proc;
        proc
      end
      else proc
    in
    (* Complete as many barriers as the stored snapshots allow. *)
    let rec drain proc =
      if barrier_ready g proc ~self then begin
        let proc = execute_barrier ~self proc in
        broadcast proc;
        drain proc
      end
      else proc
    in
    let proc = drain proc in
    (proc, !sends)
  in
  handler

let create ?(spec = Harness.Fault.pristine) ?(channel_garbage = 0)
    ?(loss = 0.) ?(duplication = 0.) ?(reorder = 0.) ?(seed = 1)
    ?(prof = Obs.Prof.disabled) ?(window = 0) ?synchrony ?rto graph workload =
  if window < 0 then invalid_arg "Ssmfp_mp.create: window must be >= 0";
  let master = Prng.Splitmix.of_int seed in
  let fault_rng = Prng.Splitmix.split master in
  let sched_rng = Prng.Splitmix.split master in
  let garbage_rng = Prng.Splitmix.split master in
  let oracle = Harness.Oracle.create () in
  let max_pulse = ref 0 in
  let on_event = ref None in
  let inner = make_handler graph oracle max_pulse on_event in
  let n = Topology.Graph.n graph in
  let nbrs =
    Array.init n (fun p -> Array.of_list (Topology.Graph.neighbors graph p))
  in
  let slot_of self q =
    let ns = nbrs.(self) in
    let rec find i =
      if i >= Array.length ns then invalid_arg "Ssmfp_mp: not a neighbor"
      else if ns.(i) = q then i
      else find (i + 1)
    in
    find 0
  in
  let win_send =
    if window = 0 then [||]
    else Array.init n (fun p -> Array.map (fun _ -> Window.sender window) nbrs.(p))
  in
  let win_recv =
    if window = 0 then [||]
    else
      Array.init n (fun p -> Array.map (fun _ -> Window.receiver window) nbrs.(p))
  in
  let init p =
    {
      core = Harness.Fault.initial_states ~rng:fault_rng spec graph ~workload p;
      pulse = 0;
      snaps = [];
      backoff = 0;
      ticks = 0;
    }
  in
  let prof_on = Obs.Prof.enabled prof in
  let ptr = Obs.Prof.track prof 0 in
  let c_retrans = Obs.Prof.counter prof "mp.retransmissions" in
  let drain_witness = ref 0 in
  (* RTO from the synchrony model: after GST any frame (and its ack) is
     delivered within delta + C steps, so 2 * (delta + C) between
     retransmissions guarantees each RTO round trips — see the liveness
     note in window.mli. Asynchronously there is no delivery bound, but
     the scheduler delivers one message per step, so the round trip is
     at least the in-flight count: an RTO below the channel count
     retransmits into its own queue and the resends snowball. The base
     RTO therefore scales with the channel count, and on top of it each
     channel backs off exponentially — consecutive fires without an
     intervening ack double the channel's RTO (an ack resets it) — so
     even a mis-sized base converges instead of storming. *)
  let channels = 2 * List.length (Topology.Graph.edges graph) in
  let rto =
    match rto with
    | Some r -> max 1 r
    | None -> (
        match synchrony with
        | Some sy -> 2 * (Synchrony.delta sy + channels)
        | None -> max 64 channels)
  in
  let rto_cap = rto * 1024 in
  (* The refresh floor keeps the steady-state republish load (two
     frames per channel per period) well under the one-delivery-per-step
     the scheduler can serve, leaving idle gaps where channels actually
     drain. *)
  let refresh_every = max (8 * rto) (16 * channels) in
  (* The network is built differently per mode:

     window = 0 — the historical backoff path, byte-identical to every
     build since the mp port landed. Timeout = retransmission with
     exponential backoff: a timer fire only republishes once 2^backoff
     fires have accumulated since the last retransmission, and every
     pulse advance resets the backoff.

     window > 0 — the sliding-window path. No random [timeout] at all:
     liveness comes from per-channel RTO timers and a slow per-process
     refresh timer on the network's wheel, both deterministic. Snapshots
     ride Data frames; acks flow back on the reverse channels. *)
  let net =
    if window = 0 then begin
      let timeout ~self (proc : proc) =
        let threshold = 1 lsl min proc.backoff 6 in
        if proc.ticks + 1 >= threshold then begin
          if prof_on then Obs.Prof.add ptr c_retrans 1;
          let msg = Plain (Snapshot (proc.pulse, public_of proc.core)) in
          ( { proc with ticks = 0; backoff = min (proc.backoff + 1) 6 },
            List.map (fun q -> (q, msg)) (Topology.Graph.neighbors graph self)
          )
        end
        else ({ proc with ticks = proc.ticks + 1 }, [])
      in
      (* Crash–recovery amnesia: the synchronizer's volatile state
         (neighbor mirrors, timers) is lost; the SSMFP core and the
         pulse counter are on stable storage. The next timer fire
         republishes and the barriers rebuild the mirrors. The recovery
         also repoints the drain-witness cache at the recovered process:
         recovery rebuilds traffic there, so [all_drained]'s O(1) check
         keeps hitting a busy process instead of rescanning from 0
         after every crash burst. *)
      let on_recover ~self proc =
        drain_witness := self;
        { proc with snaps = []; backoff = 0; ticks = 0 }
      in
      let handler ~self ~from proc msg =
        match msg with
        | Plain pay ->
            let proc, sends = inner ~self ~from proc pay in
            (proc, List.map (fun (q, p) -> (q, Plain p)) sends)
        | Win _ -> (proc, []) (* stray frame without a window layer *)
      in
      Network.create ~loss ~duplication ~reorder ~prof ?synchrony ~timeout
        ~on_recover ~init ~handler graph
    end
    else begin
      let refresh_key p = Array.length nbrs.(p) in
      let net_ref = ref None in
      let the_net () =
        match !net_ref with Some n -> n | None -> assert false
      in
      let count_retrans k = if prof_on && k > 0 then Obs.Prof.add ptr c_retrans k in
      (* Per-channel adaptive RTO: doubles on every fire that found the
         window still busy, resets to the base on any ack from the peer. *)
      let rto_cur =
        Array.init n (fun p -> Array.map (fun _ -> rto) nbrs.(p))
      in
      (* Ensure the RTO timer for channel self -> nbrs.(self).(slot) is
         armed iff the sender has frames in flight or backlog. The armed
         delay is load-adaptive: the scheduler delivers one message per
         step, so a frame's round trip is at least the network's current
         in-flight count — arming below that would retransmit a frame
         that is still queued. *)
      let sync_rto self slot =
        let net = the_net () in
        if Window.busy win_send.(self).(slot) then begin
          if not (Network.timer_armed net ~self ~key:slot) then
            Network.arm_timer net ~self ~key:slot
              ~after:(max rto_cur.(self).(slot) (2 * Network.in_flight net))
        end
        else Network.cancel_timer net ~self ~key:slot
      in
      (* Route one payload into the window of channel self -> q.
         Snapshots are full-state, so the backlog is conflated to the
         newest payload: a congested channel then carries the peer's
         *current* state with bounded lag instead of an ever-growing
         queue of stale pulses (which starves the receiver's barriers
         and livelocks the synchronizer at scale). *)
      let win_push self q pay =
        let slot = slot_of self q in
        let before = Window.retransmits win_send.(self).(slot) in
        let frames = Window.send_latest win_send.(self).(slot) pay in
        count_retrans (Window.retransmits win_send.(self).(slot) - before);
        sync_rto self slot;
        List.map (fun fr -> (q, Win fr)) frames
      in
      let route_sends self sends =
        List.concat_map (fun (q, pay) -> win_push self q pay) sends
      in
      let handler ~self ~from proc msg =
        match msg with
        | Win (Window.Ack { epoch; cum; nak }) ->
            let slot = slot_of self from in
            let snd = win_send.(self).(slot) in
            let before = Window.retransmits snd in
            let frames = Window.on_ack snd ~epoch ~cum ~nak in
            count_retrans (Window.retransmits snd - before);
            (* the peer acks, so the channel round-trips at the base RTO *)
            rto_cur.(self).(slot) <- rto;
            sync_rto self slot;
            (proc, List.map (fun fr -> (from, Win fr)) frames)
        | Win (Window.Data { epoch; seq; body }) ->
            let slot = slot_of self from in
            let accepted, reply =
              Window.on_data win_recv.(self).(slot) ~epoch ~seq body
            in
            let proc, sends =
              List.fold_left
                (fun (proc, acc) pay ->
                  let proc, s = inner ~self ~from proc pay in
                  (proc, acc @ s))
                (proc, []) accepted
            in
            (proc, ((from, Win reply) :: route_sends self sends))
        | Plain pay ->
            (* Stray plain payload (pre-window garbage): deliver it, but
               route the reaction through the windows. *)
            let proc, sends = inner ~self ~from proc pay in
            (proc, route_sends self sends)
      in
      let on_recover ~self proc =
        Array.iter Window.reset_sender win_send.(self);
        Array.iter Window.reset_receiver win_recv.(self);
        Array.iteri (fun slot _ -> rto_cur.(self).(slot) <- rto) rto_cur.(self);
        Array.iteri (fun slot _ -> sync_rto self slot) win_send.(self);
        drain_witness := self;
        { proc with snaps = []; backoff = 0; ticks = 0 }
      in
      let net =
        Network.create ~loss ~duplication ~reorder ~prof ?synchrony
          ~on_recover ~init ~handler graph
      in
      net_ref := Some net;
      (* Timer fires: per-channel RTO (key = slot) and the slow refresh
         (key = degree): republish the current snapshot on channels with
         no repair already in progress — the belt-and-braces that
         rebuilds neighbor mirrors from arbitrary initial window state
         or after crash amnesia. *)
      Network.set_timer_handler net
        ~keys:(Topology.Graph.max_degree graph + 1)
        (fun ~self ~key proc ->
          if key = refresh_key self then begin
            Network.arm_timer net ~self ~key ~after:refresh_every;
            let pay = Snapshot (proc.pulse, public_of proc.core) in
            let out = ref [] in
            Array.iteri
              (fun slot q ->
                if not (Window.busy win_send.(self).(slot)) then begin
                  count_retrans 1;
                  out := !out @ win_push self q pay
                end)
              nbrs.(self);
            (proc, !out)
          end
          else if key < Array.length nbrs.(self) then begin
            let snd = win_send.(self).(key) in
            let before = Window.retransmits snd in
            let frames = Window.on_rto snd in
            count_retrans (Window.retransmits snd - before);
            rto_cur.(self).(key) <- min (2 * rto_cur.(self).(key)) rto_cap;
            sync_rto self key;
            (proc, List.map (fun fr -> (nbrs.(self).(key), Win fr)) frames)
          end
          else (proc, []));
      net
    end
  in
  (* Bootstrap: everyone publishes its pulse-0 snapshot. *)
  if window = 0 then
    Topology.Graph.iter_vertices
      (fun p ->
        let proc = Network.state net p in
        Network.send_all net ~from:p
          (Plain (Snapshot (proc.pulse, public_of proc.core))))
      graph
  else
    Topology.Graph.iter_vertices
      (fun p ->
        let proc = Network.state net p in
        let pay = Snapshot (proc.pulse, public_of proc.core) in
        Array.iteri
          (fun slot q ->
            List.iter
              (fun fr -> Network.send_one net ~from:p ~into:q (Win fr))
              (Window.send win_send.(p).(slot) pay);
            if Window.busy win_send.(p).(slot) then
              Network.arm_timer net ~self:p ~key:slot
                ~after:(max rto (2 * Network.in_flight net)))
          nbrs.(p);
        (* Stagger the refresh timers across a whole period so the
           republish waves don't cluster; the offset is deterministic
           in the pid. *)
        Network.arm_timer net ~self:p
          ~key:(Array.length nbrs.(p))
          ~after:(refresh_every + (p mod refresh_every)))
      graph;
  (* Garbage in flight: random snapshots with random pulses and buffers —
     wrapped in window frames with random epochs/seqs when the window
     layer is on, so the initial garbage attacks the window state too. *)
  let edges = Topology.Graph.edges graph in
  for _ = 1 to channel_garbage do
    let u, v = Prng.Splitmix.choose garbage_rng edges in
    let from, into = if Prng.Splitmix.bool garbage_rng then (u, v) else (v, u) in
    let garbage_core =
      Harness.Fault.initial_states ~rng:garbage_rng
        { Harness.Fault.adversarial with buffer_fill = 0.5 }
        graph
        ~workload:(Harness.Workload.empty ~n:(Topology.Graph.n graph))
        from
    in
    let pulse = Prng.Splitmix.int garbage_rng 50 in
    let pay = Snapshot (pulse, public_of garbage_core) in
    let msg =
      if window = 0 then Plain pay
      else
        Win
          (Window.Data
             {
               epoch = Prng.Splitmix.int garbage_rng 1000;
               seq = Prng.Splitmix.int garbage_rng (4 * window);
               body = pay;
             })
    in
    Network.inject net ~from ~into msg
  done;
  {
    graph;
    net;
    rng = sched_rng;
    oracle;
    expected_valid = Harness.Workload.total workload;
    max_pulse;
    on_event;
    drain_witness;
    window;
    nbrs;
    win_send;
    win_recv;
  }

let graph (t : t) = t.graph
let oracle (t : t) = t.oracle
let expected_valid (t : t) = t.expected_valid
let max_pulse (t : t) = !(t.max_pulse)
let channel_deliveries (t : t) = Network.deliveries t.net
let core (t : t) p = (Network.state t.net p).core

let set_core t p core =
  let proc = Network.state t.net p in
  Network.set_state t.net p { proc with core }

let crash_process t p ~down_for = Network.crash t.net p ~down_for
let is_down t p = Network.is_down t.net p
let pulse_of t p = (Network.state t.net p).pulse
let window (t : t) = t.window

let window_retransmits t =
  Array.fold_left
    (fun acc snds ->
      Array.fold_left (fun acc s -> acc + Window.retransmits s) acc snds)
    0 t.win_send

let set_event_hook t f = t.on_event := Some f

(* Snapshot-layer plumbing: the Chandy–Lamport engine in lib/snapshot
   attaches through these without ever seeing the network record. The
   tap and the channel view unwrap window frames: Data bodies and plain
   payloads are application traffic, acks are link-control and elided. *)
let on_marker t f = Network.on_marker t.net f

let on_deliver t f =
  Network.on_deliver t.net (fun ~self ~from msg ->
      match msg with
      | Plain pay -> f ~self ~from pay
      | Win (Window.Data { body; _ }) -> f ~self ~from body
      | Win (Window.Ack _) -> ())

let send_marker t rng ~from ~into ~epoch =
  Network.send_marker t.net rng ~from ~into ~epoch

let channel_contents t ~from ~into =
  List.filter_map
    (function
      | Plain pay -> Some pay
      | Win (Window.Data { body; _ }) -> Some body
      | Win (Window.Ack _) -> None)
    (Network.channel_contents t.net ~from ~into)

type marker_stats = { m_sent : int; m_delivered : int; m_dropped : int }

let marker_stats t =
  {
    m_sent = Network.markers_sent t.net;
    m_delivered = Network.markers_delivered t.net;
    m_dropped = Network.markers_dropped t.net;
  }

let channel_stats t =
  {
    delivered = Network.deliveries t.net;
    lost = Network.dropped t.net;
    duplicated = Network.duplicated t.net;
    reordered = Network.reordered t.net;
    dropped_while_down = Network.dropped_while_down t.net;
  }

let prof_overwrites t = Network.prof_overwrites t.net
let hops t = Network.hops t.net
let causal_chain t ~id = Network.causal_chain t.net ~id
let lamport t p = Network.lamport t.net p

(* [all_drained] is evaluated after every engine step as the stop
   condition, so at large [n] a naive all-processes scan is the dominant
   cost of the whole run (O(n) processes x O(n) buffer slots, per step).
   Two fixes: [State.has_occupied] checks slots without building a list,
   and we cache the last busy process as a witness — a busy network
   almost always stays busy at the same place, so the common case is a
   single O(n)-slot check instead of a full scan. The witness is also
   repointed by the crash-recovery path (the wheel's on_recover): after
   a crash burst the recovered processes are where the traffic rebuilds,
   so the cache keeps its O(1) hit rate instead of degrading to rescans. *)
let quiet t p =
  let proc = Network.state t.net p in
  proc.core.Ssmfp.State.outbox = []
  && not (Ssmfp.State.has_occupied proc.core)

let all_drained t =
  quiet t !(t.drain_witness)
  &&
  let n = Topology.Graph.n t.graph in
  let rec scan p =
    p >= n
    ||
    if quiet t p then scan (p + 1)
    else begin
      t.drain_witness := p;
      false
    end
  in
  scan 0

let drive ?(max_deliveries = 2_000_000) ?stop t =
  let stop = match stop with Some f -> fun _ -> f t | None -> fun _ -> false in
  Network.run ~max_deliveries ~stop t.net t.rng

let run ?(max_deliveries = 2_000_000) t =
  let status = drive ~max_deliveries ~stop:all_drained t in
  let outcome =
    match status with
    | `Stopped -> `All_done
    | `Idle | `Max_deliveries -> `Max_deliveries
  in
  let verdict =
    Harness.Oracle.check_sp t.oracle ~expected_valid:t.expected_valid
      ~n:(Topology.Graph.n t.graph)
      ~at_quiescence:(outcome = `All_done)
  in
  {
    outcome;
    channel_deliveries = Network.deliveries t.net;
    max_pulse = !(t.max_pulse);
    oracle = t.oracle;
    verdict;
  }
