type public = {
  pub_routing : Routing.Selfstab.state;
  pub_bufs : (Ssmfp.Message.t option * Ssmfp.Message.t option) array;
}

type payload = Snapshot of int * public

(* Per-neighbor snapshot store: every snapshot with pulse >= ours is kept
   (at most a couple after pruning), so a barrier can never be starved by
   a newer snapshot overwriting the one it still needs. *)
type proc = {
  core : Ssmfp.State.t;
  pulse : int;
  snaps : (int * (int * public) list) list; (* neighbor -> (pulse, pub) list *)
  backoff : int; (* consecutive retransmissions without pulse progress *)
  ticks : int; (* timer fires since the last retransmission *)
}

type event_hook = pid:int -> pulse:int -> Ssmfp.Protocol.event -> unit

type t = {
  graph : Topology.Graph.t;
  net : (proc, payload) Network.t;
  rng : Prng.Splitmix.t;
  oracle : Harness.Oracle.t;
  expected_valid : int;
  max_pulse : int ref;
  on_event : event_hook option ref;
  drain_witness : int ref; (* last process seen busy by [all_drained] *)
}

type channel_stats = {
  delivered : int;
  lost : int;
  duplicated : int;
  reordered : int;
  dropped_while_down : int;
}

type result = {
  outcome : [ `All_done | `Max_deliveries ];
  channel_deliveries : int;
  max_pulse : int;
  oracle : Harness.Oracle.t;
  verdict : Harness.Oracle.verdict;
}

let public_of (core : Ssmfp.State.t) =
  {
    pub_routing = Array.copy core.Ssmfp.State.routing;
    pub_bufs =
      Array.map
        (fun sl -> (sl.Ssmfp.State.buf_r, sl.Ssmfp.State.buf_e))
        core.Ssmfp.State.slots;
  }

(* Reconstruct the State.t a guard would read for neighbor [q] from its
   published snapshot. Fields p never reads from a neighbor (queue, rr,
   request, outbox) get placeholders. *)
let state_of_public q pub =
  {
    Ssmfp.State.routing = pub.pub_routing;
    slots =
      Array.map
        (fun (r, e) -> { Ssmfp.State.buf_r = r; buf_e = e; queue = [ q ] })
        pub.pub_bufs;
    rr = 0;
    request = false;
    outbox = [];
  }

let snaps_for proc q =
  Option.value ~default:[] (List.assoc_opt q proc.snaps)

let store_snap proc q pulse pub =
  let kept =
    (pulse, pub)
    :: List.filter
         (fun (k, _) -> k <> pulse && k >= proc.pulse)
         (snaps_for proc q)
  in
  { proc with snaps = (q, kept) :: List.remove_assoc q proc.snaps }

let prune proc =
  {
    proc with
    snaps =
      List.map
        (fun (q, l) -> (q, List.filter (fun (k, _) -> k >= proc.pulse) l))
        proc.snaps;
  }

let barrier_ready g proc ~self =
  List.for_all
    (fun q -> List.mem_assoc proc.pulse (snaps_for proc q))
    (Topology.Graph.neighbors g self)

(* Any pulse progress resets the retransmission backoff: the channel is
   evidently moving again. *)
let advance_pulse proc pulse = { proc with pulse; backoff = 0; ticks = 0 }

let make_handler g oracle max_pulse_ref hook_ref =
  let n = Topology.Graph.n g in
  let proto = Ssmfp.Protocol.make g in
  (* Same states [State.clean] would build, but sharing one BFS sweep per
     destination across all processes: [n] separate [init_correct] calls
     are cubic in [n] and dominated start-up wall-clock at 1k nodes. *)
  let dummy =
    let correct = Routing.Selfstab.init_correct_all g in
    Array.init n (fun p ->
        {
          (Ssmfp.State.clean g ~correct_routing:false p) with
          Ssmfp.State.routing = correct.(p);
        })
  in
  let publish proc =
    (proc.pulse, Snapshot (proc.pulse, public_of proc.core))
  in
  let execute_barrier ~self proc =
    (* Raise request_p if the higher layer has pending traffic. *)
    let core =
      if (not proc.core.Ssmfp.State.request) && proc.core.Ssmfp.State.outbox <> []
      then begin
        Harness.Oracle.observe_request_raised oracle ~round:proc.pulse ~pid:self;
        { proc.core with Ssmfp.State.request = true }
      end
      else proc.core
    in
    let states =
      Array.init n (fun i ->
          if i = self then core
          else if Topology.Graph.is_edge g self i then
            match List.assoc_opt proc.pulse (snaps_for proc i) with
            | Some pub -> state_of_public i pub
            | None -> dummy.(i) (* unreachable: barrier_ready checked *)
          else dummy.(i))
    in
    let net = Sim.Engine.synthetic ~graph:g ~states in
    let core =
      match proto.Sim.Engine.enabled net self with
      | [] -> core
      | action :: _ ->
          let core', events = proto.Sim.Engine.apply net self action in
          List.iter
            (fun ev ->
              Harness.Oracle.observe oracle ~round:proc.pulse ~pid:self ev;
              (* The in-band observer: each process's local event ledger
                 (the snapshot layer's) sees exactly what the omniscient
                 oracle sees, but attributed to the acting process. *)
              match !hook_ref with
              | None -> ()
              | Some f -> f ~pid:self ~pulse:proc.pulse ev)
            events;
          core'
    in
    let proc = prune (advance_pulse { proc with core } (proc.pulse + 1)) in
    if proc.pulse > !max_pulse_ref then max_pulse_ref := proc.pulse;
    proc
  in
  let handler ~self ~from proc (Snapshot (k, pub)) =
    let proc = store_snap proc from k pub in
    let sends = ref [] in
    let broadcast proc =
      let _, msg = publish proc in
      sends :=
        !sends @ List.map (fun q -> (q, msg)) (Topology.Graph.neighbors g self)
    in
    (* Maximum adoption: jump forward to a larger pulse and republish. *)
    let proc =
      if k > proc.pulse then begin
        let proc = prune (advance_pulse proc k) in
        broadcast proc;
        proc
      end
      else proc
    in
    (* Complete as many barriers as the stored snapshots allow. *)
    let rec drain proc =
      if barrier_ready g proc ~self then begin
        let proc = execute_barrier ~self proc in
        broadcast proc;
        drain proc
      end
      else proc
    in
    let proc = drain proc in
    (proc, !sends)
  in
  handler

let create ?(spec = Harness.Fault.pristine) ?(channel_garbage = 0)
    ?(loss = 0.) ?(duplication = 0.) ?(reorder = 0.) ?(seed = 1)
    ?(prof = Obs.Prof.disabled) graph workload =
  let master = Prng.Splitmix.of_int seed in
  let fault_rng = Prng.Splitmix.split master in
  let sched_rng = Prng.Splitmix.split master in
  let garbage_rng = Prng.Splitmix.split master in
  let oracle = Harness.Oracle.create () in
  let max_pulse = ref 0 in
  let on_event = ref None in
  let handler = make_handler graph oracle max_pulse on_event in
  let init p =
    {
      core = Harness.Fault.initial_states ~rng:fault_rng spec graph ~workload p;
      pulse = 0;
      snaps = [];
      backoff = 0;
      ticks = 0;
    }
  in
  (* Timeout = retransmission with exponential backoff: a timer fire only
     republishes once 2^backoff fires have accumulated since the last
     retransmission, and every pulse advance resets the backoff. Lossy
     channels still recover (the retransmission always eventually fires —
     idle networks fire timers on every step) without the chatter of
     unconditional republishing under duplication/reordering. *)
  let prof_on = Obs.Prof.enabled prof in
  let ptr = Obs.Prof.track prof 0 in
  let c_retrans = Obs.Prof.counter prof "mp.retransmissions" in
  let timeout ~self (proc : proc) =
    let threshold = 1 lsl min proc.backoff 6 in
    if proc.ticks + 1 >= threshold then begin
      if prof_on then Obs.Prof.add ptr c_retrans 1;
      let msg = Snapshot (proc.pulse, public_of proc.core) in
      ( { proc with ticks = 0; backoff = min (proc.backoff + 1) 6 },
        List.map (fun q -> (q, msg)) (Topology.Graph.neighbors graph self) )
    end
    else ({ proc with ticks = proc.ticks + 1 }, [])
  in
  (* Crash–recovery amnesia: the synchronizer's volatile state (neighbor
     mirrors, timers) is lost; the SSMFP core and the pulse counter are
     on stable storage. The next timer fire republishes and the barriers
     rebuild the mirrors. *)
  let on_recover ~self:_ proc =
    { proc with snaps = []; backoff = 0; ticks = 0 }
  in
  let net =
    Network.create ~loss ~duplication ~reorder ~prof ~timeout ~on_recover
      ~init ~handler graph
  in
  (* Bootstrap: everyone publishes its pulse-0 snapshot. *)
  Topology.Graph.iter_vertices
    (fun p ->
      let proc = Network.state net p in
      Network.send_all net ~from:p
        (Snapshot (proc.pulse, public_of proc.core)))
    graph;
  (* Garbage in flight: random snapshots with random pulses and buffers. *)
  let edges = Topology.Graph.edges graph in
  for _ = 1 to channel_garbage do
    let u, v = Prng.Splitmix.choose garbage_rng edges in
    let from, into = if Prng.Splitmix.bool garbage_rng then (u, v) else (v, u) in
    let garbage_core =
      Harness.Fault.initial_states ~rng:garbage_rng
        { Harness.Fault.adversarial with buffer_fill = 0.5 }
        graph
        ~workload:(Harness.Workload.empty ~n:(Topology.Graph.n graph))
        from
    in
    let pulse = Prng.Splitmix.int garbage_rng 50 in
    Network.inject net ~from ~into (Snapshot (pulse, public_of garbage_core))
  done;
  {
    graph;
    net;
    rng = sched_rng;
    oracle;
    expected_valid = Harness.Workload.total workload;
    max_pulse;
    on_event;
    drain_witness = ref 0;
  }

let graph (t : t) = t.graph
let oracle (t : t) = t.oracle
let expected_valid (t : t) = t.expected_valid
let max_pulse (t : t) = !(t.max_pulse)
let channel_deliveries (t : t) = Network.deliveries t.net
let core (t : t) p = (Network.state t.net p).core

let set_core t p core =
  let proc = Network.state t.net p in
  Network.set_state t.net p { proc with core }

let crash_process t p ~down_for = Network.crash t.net p ~down_for
let is_down t p = Network.is_down t.net p
let pulse_of t p = (Network.state t.net p).pulse
let set_event_hook t f = t.on_event := Some f

(* Snapshot-layer plumbing: the Chandy–Lamport engine in lib/snapshot
   attaches through these without ever seeing the network record. *)
let on_marker t f = Network.on_marker t.net f
let on_deliver t f = Network.on_deliver t.net f
let send_marker t rng ~from ~into ~epoch =
  Network.send_marker t.net rng ~from ~into ~epoch
let channel_contents t ~from ~into = Network.channel_contents t.net ~from ~into

type marker_stats = { m_sent : int; m_delivered : int; m_dropped : int }

let marker_stats t =
  {
    m_sent = Network.markers_sent t.net;
    m_delivered = Network.markers_delivered t.net;
    m_dropped = Network.markers_dropped t.net;
  }

let channel_stats t =
  {
    delivered = Network.deliveries t.net;
    lost = Network.dropped t.net;
    duplicated = Network.duplicated t.net;
    reordered = Network.reordered t.net;
    dropped_while_down = Network.dropped_while_down t.net;
  }

let hops t = Network.hops t.net
let causal_chain t ~id = Network.causal_chain t.net ~id
let lamport t p = Network.lamport t.net p

(* [all_drained] is evaluated after every engine step as the stop
   condition, so at large [n] a naive all-processes scan is the dominant
   cost of the whole run (O(n) processes x O(n) buffer slots, per step).
   Two fixes: [State.has_occupied] checks slots without building a list,
   and we cache the last busy process as a witness — a busy network
   almost always stays busy at the same place, so the common case is a
   single O(n)-slot check instead of a full scan. *)
let quiet t p =
  let proc = Network.state t.net p in
  proc.core.Ssmfp.State.outbox = []
  && not (Ssmfp.State.has_occupied proc.core)

let all_drained t =
  quiet t !(t.drain_witness)
  &&
  let n = Topology.Graph.n t.graph in
  let rec scan p =
    p >= n
    ||
    if quiet t p then scan (p + 1)
    else begin
      t.drain_witness := p;
      false
    end
  in
  scan 0

let drive ?(max_deliveries = 2_000_000) ?stop t =
  let stop = match stop with Some f -> fun _ -> f t | None -> fun _ -> false in
  Network.run ~max_deliveries ~stop t.net t.rng

let run ?(max_deliveries = 2_000_000) t =
  let status = drive ~max_deliveries ~stop:all_drained t in
  let outcome =
    match status with
    | `Stopped -> `All_done
    | `Idle | `Max_deliveries -> `Max_deliveries
  in
  let verdict =
    Harness.Oracle.check_sp t.oracle ~expected_valid:t.expected_valid
      ~n:(Topology.Graph.n t.graph)
      ~at_quiescence:(outcome = `All_done)
  in
  {
    outcome;
    channel_deliveries = Network.deliveries t.net;
    max_pulse = !(t.max_pulse);
    oracle = t.oracle;
    verdict;
  }
