type slot = {
  buf_r : Message.t option;
  buf_e : Message.t option;
  queue : int list;
}

type t = {
  routing : Routing.Selfstab.state;
  slots : slot array;
  rr : int;
  request : bool;
  outbox : (int * Message.info) list;
}

let empty_slot g ~p =
  { buf_r = None; buf_e = None; queue = p :: Topology.Graph.neighbors g p }

let clean g ?(correct_routing = true) p =
  let n = Topology.Graph.n g in
  let routing =
    if correct_routing then Routing.Selfstab.init_correct g p
    else Array.make n { Routing.Selfstab.dist = 0; via = p }
  in
  {
    routing;
    slots = Array.init n (fun _ -> empty_slot g ~p);
    rr = 0;
    request = false;
    outbox = [];
  }

let slot t d = t.slots.(d)

let with_slot t d s =
  let slots = Array.copy t.slots in
  slots.(d) <- s;
  { t with slots }

let with_routing t routing = { t with routing }
let with_rr t rr = { t with rr }

let next_destination t =
  match t.outbox with [] -> None | (d, _) :: _ -> Some d

let next_message t =
  match t.outbox with [] -> None | (_, info) :: _ -> Some info

let pop_outbox t =
  match t.outbox with [] -> t | _ :: rest -> { t with outbox = rest }

let push_outbox t ~dest info = { t with outbox = t.outbox @ [ (dest, info) ] }

let has_occupied t =
  let n = Array.length t.slots in
  let rec scan d =
    d < n
    &&
    let s = t.slots.(d) in
    s.buf_r <> None || s.buf_e <> None || scan (d + 1)
  in
  scan 0

let occupied_buffers t =
  let acc = ref [] in
  Array.iteri
    (fun d s ->
      Option.iter (fun m -> acc := (d, `E, m) :: !acc) s.buf_e;
      Option.iter (fun m -> acc := (d, `R, m) :: !acc) s.buf_r)
    t.slots;
  List.rev !acc

let pp fmt t =
  let buf d tag = function
    | None -> ()
    | Some m -> Format.fprintf fmt " %s%d=%a" tag d Message.pp m
  in
  Format.fprintf fmt "{req=%b" t.request;
  Array.iteri
    (fun d s ->
      buf d "R" s.buf_r;
      buf d "E" s.buf_e)
    t.slots;
  Format.fprintf fmt "}"
