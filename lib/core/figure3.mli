(** Scripted regeneration of the paper's Figure 3 execution.

    The paper walks a 4-processor network (a, b, c, d; Δ = 3) through 13
    configurations for destination [b]: routing tables start corrupted
    with a cycle between [a] and [c]; an invalid message [m'] (color 0)
    sits in [bufR_b(b)]; [c] emits a valid [m] (recolored 1, since 0 is
    forbidden by the invalid message next door) and then a valid [m']
    carrying the same useful information as the invalid one (recolored 2);
    the tables are repaired mid-flight; and all three messages are
    delivered — the two valid ones exactly once, with the colors
    preventing the merge of the two occurrences of [m'].

    Deviations, documented in DESIGN.md: the paper's abstract routing
    protocol [A] stays locally quiescent at [a] until the repair step,
    which is impossible for our concrete distance-vector [A] (a corrupted
    cycle always enables some processor, and strict priority would then
    block SSMFP there). The reproduction therefore freezes [A]
    ([run_routing:false]) and models "routing tables are repaired during
    the next step" by writing the stabilized entries at the same step,
    exactly as the narrative assumes. The tail of the execution
    (configurations (6)–(12), whose drawing we cannot read) is replayed as
    the unique schedule delivering the three messages in the paper's
    spirit. *)

type delivery = { at_step : int; message : Message.t }

type snapshot = string
(** Rendering of destination b's buffer-graph component. *)

type result = {
  trace : snapshot Sim.Trace.t;
  deliveries : delivery list;  (** in delivery order *)
  colors_assigned : int list;
      (** colors given by [color_c(b)] / [color_a(b)] to the valid
          messages, in assignment order — the paper's 1, 2, 1, ... *)
  final_net : State.t Sim.Engine.net;
  stats : Sim.Engine.stats;
}

val graph : Topology.Graph.t
(** The Figure 2/3 network ({!Topology.Builders.paper_figure2}). *)

val destination : int
(** b = 1. *)

val run :
  ?on_event:(step:int -> round:int -> pid:int -> Protocol.event -> unit) ->
  unit ->
  result
(** Execute the scripted schedule. Deterministic (the ghost counter is
    reset first, so ghost ids are stable run to run). [on_event] sees
    every protocol event with the engine's step and round counters —
    the hook the observability layer's journal subscribes to (the
    golden-journal test relies on the determinism). *)

val expected_deliveries : string list
(** The useful informations in expected delivery order:
    ["m'"] (invalid), ["m"], ["m'"]. *)

val print : Format.formatter -> result -> unit
(** Pretty, step-by-step rendering (the bench's Figure 3 section). *)
