let graph = Topology.Builders.paper_figure2

let destination = 1 (* b *)

type delivery = { at_step : int; message : Message.t }

type snapshot = string

type result = {
  trace : snapshot Sim.Trace.t;
  deliveries : delivery list;
  colors_assigned : int list;
  final_net : State.t Sim.Engine.net;
  stats : Sim.Engine.stats;
}

let expected_deliveries = [ "m'"; "m"; "m'" ]

(* Vertices: a = 0, b = 1, c = 2, d = 3. *)
let a, b, c, _d = (0, 1, 2, 3)

let init p =
  let st = State.clean graph ~correct_routing:true p in
  let st =
    (* Corrupt destination b's entries so that nextHop_a(b) = c and
       nextHop_c(b) = a: the buffer cycle of configuration (0). *)
    if p = a then begin
      let routing = Array.copy st.State.routing in
      routing.(destination) <- { Routing.Selfstab.dist = 0; via = c };
      State.with_routing st routing
    end
    else if p = c then begin
      let routing = Array.copy st.State.routing in
      routing.(destination) <- { Routing.Selfstab.dist = 1; via = a };
      State.with_routing st routing
    end
    else st
  in
  if p = b then
    (* The invalid message m' (color 0) of configuration (0). *)
    let sl = State.slot st destination in
    State.with_slot st destination
      {
        sl with
        State.buf_r =
          Some (Message.fresh_invalid ~at:b ~last:a ~color:0 "m'");
      }
  else if p = c then
    (* c will emit m then a second message with useful information m'. *)
    let st = State.push_outbox st ~dest:destination "m" in
    let st = State.push_outbox st ~dest:destination "m'" in
    { st with State.request = true }
  else st

type engine = (State.t, Protocol.action, Protocol.event) Sim.Engine.t

let raise_request (t : engine) p =
  let st = Sim.Engine.state t p in
  if (not st.State.request) && st.State.outbox <> [] then
    Sim.Engine.set_state t p { st with State.request = true }

let repair_tables (t : engine) =
  Topology.Graph.iter_vertices
    (fun p ->
      let st = Sim.Engine.state t p in
      Sim.Engine.set_state t p
        (State.with_routing st (Routing.Selfstab.init_correct graph p)))
    graph

let letter p = Topology.Dot.default_letter p

let snapshot (t : engine) : snapshot =
  let render p =
    let st = Sim.Engine.state t p in
    let sl = State.slot st destination in
    let buf = function
      | None -> "-"
      | Some m -> Message.to_string m
    in
    Printf.sprintf "%s:R=%s E=%s" (letter p) (buf sl.State.buf_r)
      (buf sl.State.buf_e)
  in
  String.concat " | " (List.map render (Topology.Graph.vertices graph))

(* The schedule: each entry is an optional external event (the higher
   layer raising a request, or A completing its repair) followed by the
   simultaneous protocol moves of the step. *)
let script : ((engine -> unit) option * (int * string) list) list =
  [
    (None, [ (c, "R1") ]); (* (1) c emits m, color 0 *)
    (None, [ (c, "R2") ]); (* (2) m to bufE_c, recolored 1 *)
    ( Some (fun t -> raise_request t c),
      [ (a, "R3"); (c, "R1") ] );
    (* (3) m copied to bufR_a; c emits its second message *)
    (None, [ (c, "R4") ]); (* towards (4): bufE_c erased *)
    (None, [ (c, "R2") ]); (* (4) m' to bufE_c, recolored 2 *)
    ( Some repair_tables,
      [ (a, "R2") ] );
    (* (5) tables repaired; simultaneously a moves m to bufE_a *)
    (None, [ (b, "R2") ]); (* (6..12): the invalid m' advances at b *)
    (None, [ (b, "R6") ]); (* invalid m' delivered *)
    (None, [ (b, "R3") ]); (* b pulls m from a *)
    (None, [ (a, "R4") ]);
    (None, [ (b, "R2") ]);
    (None, [ (b, "R6") ]); (* m delivered *)
    (None, [ (b, "R3") ]); (* b pulls the valid m' from c *)
    (None, [ (c, "R4") ]);
    (None, [ (b, "R2") ]);
    (None, [ (b, "R6") ]); (* the valid m' delivered *)
  ]

let run ?on_event () =
  Message.reset_ghost_counter ();
  let protocol = Protocol.make ~run_routing:false graph in
  let t = Sim.Engine.make ~graph ~protocol init in
  let trace = Sim.Trace.create () in
  Sim.Trace.record trace ~step:0 ~moves:[] ~after:(snapshot t);
  let deliveries = ref [] in
  let colors = ref [] in
  let label (act : Protocol.action) = Protocol.rule_name act.Protocol.rule in
  let run_step i (pre, moves) =
    Option.iter (fun f -> f t) pre;
    let daemon = Sim.Daemon.scripted_multi ~label [ moves ] in
    (match Sim.Engine.step t daemon with
    | None -> failwith "figure3: configuration unexpectedly terminal"
    | Some events ->
        let round = (Sim.Engine.stats t).Sim.Engine.rounds in
        List.iter
          (fun (pid, ev) ->
            (match on_event with
            | Some f -> f ~step:i ~round ~pid ev
            | None -> ());
            match ev with
            | Protocol.Delivered m ->
                deliveries := { at_step = i; message = m } :: !deliveries
            | Protocol.Internal_forward (m, _) when Message.is_valid m ->
                colors := m.Message.color :: !colors
            | _ -> ())
          events);
    let step_moves =
      List.map (fun (pid, rule) -> { Sim.Trace.pid; rule }) moves
    in
    Sim.Trace.record trace ~step:i ~moves:step_moves ~after:(snapshot t)
  in
  List.iteri (fun i entry -> run_step (i + 1) entry) script;
  {
    trace;
    deliveries = List.rev !deliveries;
    colors_assigned = List.rev !colors;
    final_net = Sim.Engine.net t;
    stats = Sim.Engine.stats t;
  }

let print fmt r =
  Format.fprintf fmt "Figure 3: network a-b, a-c, b-c, a-d; destination b@.";
  Format.fprintf fmt
    "initial corruption: nextHop_a(b)=c, nextHop_c(b)=a (cycle); invalid \
     m' in bufR_b@.";
  List.iter
    (fun (e : snapshot Sim.Trace.entry) ->
      let moves =
        if e.Sim.Trace.moves = [] then "initial"
        else
          String.concat ", "
            (List.map
               (fun (m : Sim.Trace.move) ->
                 Printf.sprintf "%s:%s" (letter m.Sim.Trace.pid)
                   m.Sim.Trace.rule)
               e.Sim.Trace.moves)
      in
      Format.fprintf fmt "(%2d) %-14s %s@." e.Sim.Trace.step moves
        e.Sim.Trace.after)
    (Sim.Trace.entries r.trace);
  Format.fprintf fmt "deliveries:";
  List.iter
    (fun d ->
      Format.fprintf fmt " step %d: %a;" d.at_step Message.pp d.message)
    r.deliveries;
  Format.fprintf fmt "@.colors assigned to valid messages: %s@."
    (String.concat ", " (List.map string_of_int r.colors_assigned))
