type info = string

type validity = Valid | Invalid

type ghost = { gid : int; validity : validity; born_src : int }

type t = { info : info; last : int; color : int; ghost : ghost }

(* Ghost ids are domain-local: campaign workers running scenarios on
   parallel domains allocate without contention, and a reset touches only
   the calling domain's stream. Uniqueness is only ever needed within one
   run, which executes entirely on one domain. *)
let counter_key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_ghost validity born_src =
  let counter = Domain.DLS.get counter_key in
  incr counter;
  { gid = !counter; validity; born_src }

let reset_ghost_counter () = Domain.DLS.get counter_key := 0

let fresh_valid ~src info =
  { info; last = src; color = 0; ghost = fresh_ghost Valid src }

let fresh_invalid ~at ~last ~color info =
  { info; last; color; ghost = fresh_ghost Invalid at }

let same_visible a b = a.info = b.info && a.last = b.last && a.color = b.color

let matches_info_color t ~info ~color = t.info = info && t.color = color

let with_hop t ~last = { t with last }

let with_recolor t ~last ~color = { t with last; color }

let is_valid t = t.ghost.validity = Valid

let pp fmt t =
  Format.fprintf fmt "%s(%s,%d,%d)"
    (match t.ghost.validity with Valid -> "" | Invalid -> "!")
    t.info t.last t.color

let to_string t = Format.asprintf "%a" pp t
