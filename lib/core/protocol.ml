type rule = Route | R1 | R2 | R3 | R4 | R5 | R6

type action = { rule : rule; dest : int }

type event =
  | Generated of Message.t * int
  | Delivered of Message.t
  | Internal_forward of Message.t * int
  | Copied of Message.t * int * int
  | Erased_after_forward of Message.t * int
  | Erased_duplicate of Message.t * int
  | Routing_update of int

type variant = {
  use_colors : bool;
  use_r5 : bool;
  rotate_queue : bool;
  literal_r5 : bool;
}

let faithful =
  { use_colors = true; use_r5 = true; rotate_queue = true; literal_r5 = false }

let rule_name = function
  | Route -> "RA"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let pp_event fmt = function
  | Generated (m, d) -> Format.fprintf fmt "generated %a for %d" Message.pp m d
  | Delivered m -> Format.fprintf fmt "delivered %a" Message.pp m
  | Internal_forward (m, d) ->
      Format.fprintf fmt "internal %a for %d" Message.pp m d
  | Copied (m, s, d) ->
      Format.fprintf fmt "copied %a from %d for %d" Message.pp m s d
  | Erased_after_forward (m, d) ->
      Format.fprintf fmt "erasedE %a for %d" Message.pp m d
  | Erased_duplicate (m, d) ->
      Format.fprintf fmt "erasedR %a for %d" Message.pp m d
  | Routing_update d -> Format.fprintf fmt "routing update for %d" d

(* --- reading the configuration ------------------------------------- *)

let read (net : State.t Sim.Engine.net) q = net.states.(q)

let routing_of net q = (read net q).State.routing

let slot_of net q d = State.slot (read net q) d

let readable g ~p q = q = p || Topology.Graph.is_edge g p q

(* bufR_q(d) as seen from p: readable only for q in N_p ∪ {p}. *)
let buf_r_seen g net ~p q d =
  if readable g ~p q then (slot_of net q d).State.buf_r else None

let buf_e_seen g net ~p q d =
  if readable g ~p q then (slot_of net q d).State.buf_e else None

let next_hop net q ~d = Routing.Selfstab.next_hop (routing_of net q) ~d

(* --- choice_p(d) ----------------------------------------------------- *)

let can_feed g net ~p ~d s =
  if s = p then
    let sp = read net p in
    sp.State.request && State.next_destination sp = Some d
  else
    match buf_e_seen g net ~p s d with
    | Some _ -> next_hop net s ~d = p
    | None -> false

let normalized_queue g net ~p ~d =
  Choice.normalize g ~p (slot_of net p d).State.queue

let choice g net ~p ~d =
  Choice.select ~candidate:(can_feed g net ~p ~d) (normalized_queue g net ~p ~d)

(* --- guards ----------------------------------------------------------- *)

let guard_r1 g net ~p ~d =
  let sp = read net p in
  sp.State.request
  && State.next_destination sp = Some d
  && (State.slot sp d).State.buf_r = None
  && choice g net ~p ~d = Some p

let guard_r2 g net ~p ~d =
  let sl = slot_of net p d in
  match (sl.State.buf_e, sl.State.buf_r) with
  | None, Some m ->
      let q = m.Message.last in
      q = p
      ||
      (match buf_e_seen g net ~p q d with
      | Some m' ->
          not (Message.matches_info_color m' ~info:m.Message.info ~color:m.Message.color)
      | None -> true)
  | _ -> false

let guard_r3 g net ~p ~d =
  (slot_of net p d).State.buf_r = None
  &&
  match choice g net ~p ~d with
  | Some s when s <> p -> (
      match buf_e_seen g net ~p s d with Some _ -> true | None -> false)
  | Some _ | None -> false

let guard_r4 g net ~p ~d =
  p <> d
  &&
  match (slot_of net p d).State.buf_e with
  | None -> false
  | Some m ->
      let h = next_hop net p ~d in
      let is_copy = function
        | Some (m' : Message.t) ->
            m'.info = m.Message.info && m'.last = p && m'.color = m.Message.color
        | None -> false
      in
      readable g ~p h
      && is_copy (buf_r_seen g net ~p h d)
      && List.for_all
           (fun r -> r = h || not (is_copy (buf_r_seen g net ~p r d)))
           (Topology.Graph.neighbors g p)

(* R5 requires q <> p: a message whose [last] field is [p] itself was
   generated at [p] by R1 (rule R3 always stamps the feeding neighbor), so
   it is the head of a type-1 caterpillar (Definition 3's [q = p] clause),
   not a stray copy of [bufE_p]. Allowing [q = p] would erase a freshly
   generated message whenever an identical invalid message occupies
   [bufE_p(d)] — a violation of SP found by the model checker (see
   DESIGN.md §5). *)
let guard_r5 ~literal g net ~p ~d =
  match (slot_of net p d).State.buf_r with
  | None -> false
  | Some m when (not literal) && m.Message.last = p -> false
  | Some m -> (
      let q = m.Message.last in
      match buf_e_seen g net ~p q d with
      | Some m' ->
          Message.matches_info_color m' ~info:m.Message.info ~color:m.Message.color
          && next_hop net q ~d <> p
      | None -> false)

let guard_r6 net ~p ~d = d = p && (slot_of net p d).State.buf_e <> None

(* --- actions ----------------------------------------------------------- *)

let apply_r1 ~rotate_queue g net p d =
  let sp = read net p in
  let info = Option.get (State.next_message sp) in
  let msg = Message.fresh_valid ~src:p info in
  let sl = State.slot sp d in
  let queue = Choice.normalize g ~p sl.State.queue in
  let queue = if rotate_queue then Choice.serve p queue else queue in
  let sp = State.with_slot sp d { sl with State.buf_r = Some msg; queue } in
  let sp = State.pop_outbox { sp with State.request = false } in
  (sp, [ Generated (msg, d) ])

let apply_r2 ~use_colors g ~delta net p d =
  let sp = read net p in
  let sl = State.slot sp d in
  let m = Option.get sl.State.buf_r in
  let color =
    if use_colors then
      let neighbor_buf_r q = buf_r_seen g net ~p q d in
      Color.pick g ~delta ~neighbor_buf_r ~p
    else 0
  in
  let m' = Message.with_recolor m ~last:p ~color in
  let sp =
    State.with_slot sp d { sl with State.buf_r = None; buf_e = Some m' }
  in
  (sp, [ Internal_forward (m', d) ])

let apply_r3 ~rotate_queue g net p d =
  let sp = read net p in
  let sl = State.slot sp d in
  let s = Option.get (choice g net ~p ~d) in
  let m = Option.get (buf_e_seen g net ~p s d) in
  let m' = Message.with_hop m ~last:s in
  let queue = Choice.normalize g ~p sl.State.queue in
  let queue = if rotate_queue then Choice.serve s queue else queue in
  let sp = State.with_slot sp d { sl with State.buf_r = Some m'; queue } in
  (sp, [ Copied (m', s, d) ])

let apply_r4 net p d =
  let sp = read net p in
  let sl = State.slot sp d in
  let m = Option.get sl.State.buf_e in
  (State.with_slot sp d { sl with State.buf_e = None },
   [ Erased_after_forward (m, d) ])

let apply_r5 net p d =
  let sp = read net p in
  let sl = State.slot sp d in
  let m = Option.get sl.State.buf_r in
  (State.with_slot sp d { sl with State.buf_r = None },
   [ Erased_duplicate (m, d) ])

let apply_r6 net p =
  let sp = read net p in
  let sl = State.slot sp p in
  let m = Option.get sl.State.buf_e in
  (State.with_slot sp p { sl with State.buf_e = None }, [ Delivered m ])

(* --- enabled actions, in offer order ----------------------------------- *)

let rotated n rr =
  (* destinations rr, rr+1, ..., n-1, 0, ..., rr-1 *)
  List.init n (fun i -> (rr + i) mod n)

let ssmfp_rules_for g ~variant net ~p ~d =
  let add rule guard acc = if guard then { rule; dest = d } :: acc else acc in
  List.rev
    ([]
    |> add R6 (guard_r6 net ~p ~d)
    |> add R4 (guard_r4 g net ~p ~d)
    |> add R5 (variant.use_r5 && guard_r5 ~literal:variant.literal_r5 g net ~p ~d)
    |> add R2 (guard_r2 g net ~p ~d)
    |> add R3 (guard_r3 g net ~p ~d)
    |> add R1 (guard_r1 g net ~p ~d))

let rr_of g net p =
  let n = Topology.Graph.n g in
  let rr = (read net p).State.rr mod n in
  if rr < 0 then rr + n else rr

let enabled_rules g ?(variant = faithful) ?(run_routing = true)
    ?(tie = Routing.Selfstab.Smallest_id) net ~p =
  let n = Topology.Graph.n g in
  let order = rotated n (rr_of g net p) in
  let routing_actions =
    if not run_routing then []
    else
      let dests =
        Routing.Selfstab.enabled_dests ~tie g ~read:(routing_of net) ~p
      in
      if dests = [] then []
      else
        List.filter_map
          (fun d -> if List.mem d dests then Some { rule = Route; dest = d } else None)
          order
  in
  if routing_actions <> [] then routing_actions
  else
    List.concat_map (fun d -> ssmfp_rules_for g ~variant net ~p ~d) order

let apply_action g ~variant ~tie ~delta net p { rule; dest = d } =
  let n = Topology.Graph.n g in
  let sp', events =
    match rule with
    | Route ->
        let routing =
          Routing.Selfstab.apply ~tie g ~read:(routing_of net) ~p ~d
        in
        (State.with_routing (read net p) routing, [ Routing_update d ])
    | R1 -> apply_r1 ~rotate_queue:variant.rotate_queue g net p d
    | R2 -> apply_r2 ~use_colors:variant.use_colors g ~delta net p d
    | R3 -> apply_r3 ~rotate_queue:variant.rotate_queue g net p d
    | R4 -> apply_r4 net p d
    | R5 -> apply_r5 net p d
    | R6 -> apply_r6 net p
  in
  (State.with_rr sp' ((d + 1) mod n), events)

let make ?(variant = faithful) ?(run_routing = true)
    ?(tie = Routing.Selfstab.Smallest_id) g =
  let delta = Topology.Graph.max_degree g in
  {
    Sim.Engine.proto_name = "ssmfp";
    (* Every guard (R1–R6, choice, color picking and the routing layer's
       enabled_dests/target) reads only p's own state and its neighbors' —
       unreadable dereferences are already treated as "no message" (see
       DESIGN.md §5) — so the composed SSMFP∘routing protocol satisfies
       the Neighborhood contract and the engine's dirty-set evaluation
       applies. *)
    locality = Sim.Engine.Neighborhood;
    enabled = (fun net p -> enabled_rules g ~variant ~run_routing ~tie net ~p);
    apply = (fun net p a -> apply_action g ~variant ~tie ~delta net p a);
    action_label = (fun a -> rule_name a.rule);
  }

let message_count (net : State.t Sim.Engine.net) =
  Array.fold_left
    (fun acc sp -> acc + List.length (State.occupied_buffers sp))
    0 net.states

let has_traffic (net : State.t Sim.Engine.net) =
  Array.exists
    (fun sp ->
      sp.State.request
      || sp.State.outbox <> []
      || State.occupied_buffers sp <> [])
    net.states
