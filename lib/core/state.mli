(** Local state of a processor running SSMFP composed with the routing
    protocol [A].

    Per destination [d], a processor owns the two buffers of the paper's
    buffer graph (Figure 2): [buf_r] (reception) and [buf_e] (emission),
    plus the fairness queue backing [choice_p(d)]. The routing table is
    [A]'s state. [request]/[outbox] are the Input/Output interface to the
    higher layer; [rr] is the destination-rotation cursor that orders the
    actions offered to the daemon (the bookkeeping realizing the paper's
    "all destination algorithms run simultaneously" composition — see
    DESIGN.md).

    All of it, except [outbox] (owned by the higher layer), is protocol
    state and therefore arbitrarily corruptible in an initial
    configuration. *)

type slot = {
  buf_r : Message.t option;  (** [bufR_p(d)], the reception buffer *)
  buf_e : Message.t option;  (** [bufE_p(d)], the emission buffer *)
  queue : int list;
      (** fairness queue over [N_p ∪ {p}]; arbitrary content tolerated,
          normalized on use by {!Choice.normalize} *)
}

type t = {
  routing : Routing.Selfstab.state;
  slots : slot array;  (** indexed by destination, length [n] *)
  rr : int;  (** destination rotation cursor *)
  request : bool;  (** the shared variable [request_p] *)
  outbox : (int * Message.info) list;
      (** higher-layer send queue: [(destination, info)], head first *)
}

val empty_slot : Topology.Graph.t -> p:int -> slot
(** Empty buffers, queue = [p :: N_p]. *)

val clean : Topology.Graph.t -> ?correct_routing:bool -> int -> t
(** [clean g p] is the pristine state: empty buffers, canonical queues, no
    request, empty outbox, and routing tables stabilized when
    [correct_routing] (default [true]) or all-zero otherwise. *)

val slot : t -> int -> slot
val with_slot : t -> int -> slot -> t
(** Functional slot update (fresh array). *)

val with_routing : t -> Routing.Selfstab.state -> t
val with_rr : t -> int -> t

val next_destination : t -> int option
(** [nextDestination_p]: destination of the head of [outbox]. *)

val next_message : t -> Message.info option
(** [nextMessage_p]: info of the head of [outbox]. *)

val pop_outbox : t -> t
(** Drop the head of [outbox] (after R1 generated it). *)

val push_outbox : t -> dest:int -> Message.info -> t
(** Append a send request (higher layer). *)

val has_occupied : t -> bool
(** [occupied_buffers t <> []] without building the list — the hot
    drain check at large [n]. *)

val occupied_buffers : t -> (int * [ `R | `E ] * Message.t) list
(** All messages present at this processor as [(destination, buffer,
    message)] — the paper's "m is existing on p". *)

val pp : Format.formatter -> t -> unit
(** Compact rendering of the non-empty parts of the state. *)
